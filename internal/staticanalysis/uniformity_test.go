package staticanalysis

import (
	"testing"

	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
)

// findOp returns the index of the n-th instruction with the given opcode.
func findOp(t *testing.T, c *kernel.CFG, op ptx.Op, n int) int {
	t.Helper()
	for i, in := range c.Instrs {
		if in.Op == op {
			if n == 0 {
				return i
			}
			n--
		}
	}
	t.Fatalf("opcode %v occurrence %d not found", op, n)
	return -1
}

func TestUniformityLoopCounter(t *testing.T) {
	// A param-bound loop counter is warp-uniform on every iteration, and a
	// uniform loop guard keeps the whole body out of divergent control.
	c := buildCFG(t, `.visible .entry k(.param .u32 n) {
	.reg .u32 %r<8>;
	.reg .pred %p<2>;
	ld.param.u32 %r1, [n];
	mov.u32 %r2, 0;
L:
	add.u32 %r2, %r2, 1;
	setp.lt.u32 %p1, %r2, %r1;
	@%p1 bra L;
	ret;
}`)
	u := ComputeUniformity(c)
	add := findOp(t, c, ptx.OpAdd, 0)
	if !u.InputsUniform(add) {
		t.Error("loop-counter add must have uniform inputs")
	}
	if u.Divergent(add) {
		t.Error("uniform loop guard must not create a divergent region")
	}
	if !u.RegUniform(add, "%r2") {
		t.Error("reg %r2 must stay uniform across the back edge")
	}
}

func TestUniformityTidVarying(t *testing.T) {
	c := buildCFG(t, `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	add.u32 %r2, %r1, 1;
	st.global.u32 [%rd1], %r2;
	ret;
}`)
	u := ComputeUniformity(c)
	add := findOp(t, c, ptx.OpAdd, 0)
	if u.InputsUniform(add) {
		t.Error("tid-derived input must be varying")
	}
	if u.RegUniform(add, "%r1") {
		t.Error("reg %r1 holds tid.x and must be varying")
	}
	st := findOp(t, c, ptx.OpSt, 0)
	if !u.RegUniform(st, "%rd1") {
		t.Error("param-loaded rd1 must be uniform")
	}
}

func TestUniformityDivergentRegionDemotion(t *testing.T) {
	// A constant def inside the influence region of a tid-varying branch is
	// NOT uniform after reconvergence: only a subset of lanes executed it,
	// so the others keep stale values.
	c := buildCFG(t, `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<4>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	setp.lt.u32 %p1, %r1, 16;
	mov.u32 %r2, 7;
	@%p1 bra T;
	mov.u32 %r2, 9;
T:
	add.u32 %r3, %r2, 1;
	st.global.u32 [%rd1], %r3;
	ret;
}`)
	u := ComputeUniformity(c)
	// mov %r2, 9 sits in the divergent region; its inputs (an immediate)
	// are still uniform — scalarization keys on inputs, not on the def.
	mov9 := findOp(t, c, ptx.OpMov, 2)
	if !u.Divergent(mov9) {
		t.Error("taken-path mov must be under divergent control")
	}
	if !u.InputsUniform(mov9) {
		t.Error("immediate-operand mov has uniform inputs even when divergent")
	}
	add := findOp(t, c, ptx.OpAdd, 0)
	if u.RegUniform(add, "%r2") {
		t.Error("reg %r2 defined under divergence must be varying after reconvergence")
	}
	if u.Divergent(add) {
		t.Error("reconvergence block must not be marked divergent")
	}
}

func TestUniformityGuardedDef(t *testing.T) {
	c := buildCFG(t, `.visible .entry k(.param .u32 n) {
	.reg .u32 %r<8>;
	.reg .pred %p<4>;
	ld.param.u32 %r1, [n];
	mov.u32 %r2, 0;
	mov.u32 %r4, 0;
	setp.lt.u32 %p1, %r1, 16;
	@%p1 mov.u32 %r2, 5;
	mov.u32 %r3, %tid.x;
	setp.lt.u32 %p2, %r3, 16;
	@%p2 mov.u32 %r4, 5;
	add.u32 %r5, %r2, %r4;
	ret;
}`)
	u := ComputeUniformity(c)
	add := findOp(t, c, ptx.OpAdd, 0)
	if !u.RegUniform(add, "%r2") {
		t.Error("uniform-guard + uniform-old guarded def must stay uniform")
	}
	if u.RegUniform(add, "%r4") {
		t.Error("varying-guard guarded def must be varying")
	}
}

func TestUniformityLoads(t *testing.T) {
	c := buildCFG(t, `.visible .entry k(.param .u64 p) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [p];
	ld.global.u32 %r1, [%rd1];
	mov.u32 %r2, %tid.x;
	cvt.u64.u32 %rd2, %r2;
	add.u64 %rd3, %rd1, %rd2;
	ld.global.u32 %r3, [%rd3];
	atom.global.add.u32 %r4, [%rd1], %r1;
	add.u32 %r5, %r1, %r3;
	ret;
}`)
	u := ComputeUniformity(c)
	add := findOp(t, c, ptx.OpAdd, 1) // the u32 add at the end
	if !u.RegUniform(add, "%r1") {
		t.Error("load at uniform address must be uniform (simulator contract)")
	}
	if u.RegUniform(add, "%r3") {
		t.Error("load at tid-varying address must be varying")
	}
	if u.RegUniform(add, "%r4") {
		t.Error("atomic destination must be varying")
	}
}
