package staticanalysis

import (
	"sort"
	"strings"

	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
	"barracuda/internal/trace"
)

// PruneReason says why an access needs no dynamic logging.
type PruneReason uint8

// Prune verdicts. Anything the analysis cannot prove safe stays
// PruneNone, i.e. instrumented: the pruner is conservative by
// construction.
const (
	PruneNone      PruneReason = iota
	PruneRedundant             // covered by an earlier logged access on every path
	PrunePrivate               // address proven thread-private by the affine analysis
)

// PruneResult holds per-instruction prune verdicts for one kernel.
type PruneResult struct {
	Reason    []PruneReason // indexed by flat instruction index
	Redundant int
	Private   int
}

// Prunable reports whether instruction i's logging can be skipped.
func (r *PruneResult) Prunable(i int) bool {
	return i < len(r.Reason) && r.Reason[i] != PruneNone
}

func computePrune(c *kernel.CFG, class map[int]trace.OpKind, aff *Affine) *PruneResult {
	res := &PruneResult{Reason: make([]PruneReason, len(c.Instrs))}
	markPrivate(c, class, aff, res)
	markRedundant(c, class, res)
	return res
}

// --- thread-privacy (affine index) analysis -------------------------------

// addrForm classifies the affine shape of one access address.
type addrForm uint8

const (
	formOther   addrForm = iota // affine but not in a provable shape
	formUniform                 // no thread-varying terms
	formStrided                 // base + stride*gtid + delta (global) or base + stride*tid + delta (shared)
)

type siteInfo struct {
	idx    int
	kind   trace.OpKind
	form   addrForm
	stride int64
	delta  int64
	bytes  int
	sig    string   // canonical uniform-base signature (group key)
	syms   []string // param/symbol names anchoring the address
}

// markPrivate drops plain reads/writes whose addresses are provably
// disjoint across threads. Assumptions (documented in DESIGN.md): distinct
// pointer parameters do not alias, index arithmetic does not overflow
// 32 bits before widening, launches vary thread ids only along axes the
// kernel actually reads, and verdicts hold per launch. Everything the
// decomposition cannot prove blocks its group, its symbols, or the whole
// state space — in that order of locality.
func markPrivate(c *kernel.CFG, class map[int]trace.OpKind, aff *Affine, res *PruneResult) {
	blockedSpace := map[ptx.Space]bool{}
	sitesBySpace := map[ptx.Space][]siteInfo{}

	idxs := make([]int, 0, len(class))
	for i := range class {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		k := class[i]
		if !k.IsMemory() {
			continue
		}
		in := c.Instrs[i]
		if in.Space != ptx.SpaceGlobal && in.Space != ptx.SpaceShared {
			continue
		}
		v, ok := aff.addr[i]
		if !ok || !v.affine {
			// Unknown address: it could alias anything in this space.
			blockedSpace[in.Space] = true
			continue
		}
		var s siteInfo
		if in.Space == ptx.SpaceGlobal {
			s, ok = globalSite(v)
		} else {
			s, ok = sharedSite(v)
		}
		if !ok || len(s.syms) == 0 {
			// Address not anchored to any parameter or symbol.
			blockedSpace[in.Space] = true
			continue
		}
		s.idx, s.kind, s.bytes = i, k, in.AccessBytes()
		sitesBySpace[in.Space] = append(sitesBySpace[in.Space], s)
	}

	for space, sites := range sitesBySpace {
		if blockedSpace[space] {
			continue
		}
		// Group by uniform-base signature; a symbol appearing under two
		// different signatures defeats disjointness reasoning for both.
		groups := map[string][]siteInfo{}
		symSigs := map[string]map[string]bool{}
		for _, s := range sites {
			groups[s.sig] = append(groups[s.sig], s)
			for _, sym := range s.syms {
				if symSigs[sym] == nil {
					symSigs[sym] = map[string]bool{}
				}
				symSigs[sym][s.sig] = true
			}
		}
		for _, g := range groups {
			if !groupPrivate(g, symSigs) {
				continue
			}
			for _, s := range g {
				// Only plain reads/writes are dropped; atomics and
				// fence-adjacent sync accesses always log.
				if s.kind == trace.OpRead || s.kind == trace.OpWrite {
					res.Reason[s.idx] = PrunePrivate
					res.Private++
				}
			}
		}
	}
}

// groupPrivate reports whether every access in the group provably stays
// inside its own thread's slot.
func groupPrivate(g []siteInfo, symSigs map[string]map[string]bool) bool {
	stride := int64(0)
	for _, s := range g {
		if s.form != formStrided || s.bytes <= 0 {
			return false
		}
		if stride == 0 {
			stride = s.stride
		}
		if s.stride != stride {
			return false
		}
		if s.delta < 0 || s.delta+int64(s.bytes) > stride {
			return false
		}
		for _, sym := range s.syms {
			if len(symSigs[sym]) > 1 {
				return false
			}
		}
	}
	return len(g) > 0
}

// globalSite decomposes a global address into
// uniformBase + stride*(blockbase.x + tid.x) + delta, the global-thread-id
// striding idiom. Any other thread- or block-varying shape is rejected.
func globalSite(v value) (siteInfo, bool) {
	var s siteInfo
	var ct, cb int64
	var sigParts []string
	for t, co := range v.terms {
		switch {
		case t.kind == termTid && t.axis == 0:
			ct = co
		case t.kind == termBlockBase && t.axis == 0:
			cb = co
		case t.gridUniform():
			sigParts = append(sigParts, sigTerm(t, co))
			if t.kind == termParam || t.kind == termSym {
				s.syms = append(s.syms, t.name)
			}
		default:
			return siteInfo{}, false
		}
	}
	sort.Strings(sigParts)
	s.sig = "g|" + strings.Join(sigParts, ",")
	s.delta = v.c
	switch {
	case ct == 0 && cb == 0:
		s.form = formUniform
	case ct == cb && ct > 0:
		s.form = formStrided
		s.stride = ct
	default:
		s.form = formOther
	}
	return s, true
}

// sharedSite decomposes a shared address into sym + stride*tid.x + delta.
// Shared memory is per-block, but block-uniform extra terms are still
// rejected for simplicity: the common tiling patterns do not need them.
func sharedSite(v value) (siteInfo, bool) {
	var s siteInfo
	var ct int64
	nsym := 0
	for t, co := range v.terms {
		switch {
		case t.kind == termSym && co == 1:
			nsym++
			s.syms = append(s.syms, t.name)
			s.sig = "s|" + t.name
		case t.kind == termTid && t.axis == 0:
			ct = co
		default:
			return siteInfo{}, false
		}
	}
	if nsym != 1 {
		return siteInfo{}, false
	}
	s.delta = v.c
	if ct == 0 {
		s.form = formUniform
	} else if ct > 0 {
		s.form = formStrided
		s.stride = ct
	} else {
		s.form = formOther
	}
	return s, true
}

func sigTerm(t term, co int64) string {
	return t.String() + "*" + itoa64(co)
}

func itoa64(v int64) string {
	// strconv-free tiny helper to keep imports minimal.
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// --- inter-block redundancy (must) analysis -------------------------------

// covKey identifies a tracked address: base register + static offset.
type covKey struct {
	reg string
	off int64
}

// covState maps tracked addresses to the strongest access kind logged on
// every path reaching the current point with no intervening
// synchronization or base-register redefinition.
type covState map[covKey]trace.OpKind

func cloneCov(a covState) covState {
	out := make(covState, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// joinCov intersects path facts; a Write on one path and a Read on the
// other still covers later Reads.
func joinCov(a, b covState) covState {
	out := make(covState)
	for k, ka := range a {
		kb, ok := b[k]
		if !ok {
			continue
		}
		if ka == kb {
			out[k] = ka
		} else {
			out[k] = trace.OpRead
		}
	}
	return out
}

func equalCov(a, b covState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// covStep applies one instruction to the coverage state in place and
// reports whether the instruction's own logging is covered (redundant).
// It mirrors the intra-block rules of instrument.markPrunable exactly,
// extended with the thread-private exclusion: dropped sites are not
// logged, so they must not generate coverage facts.
func covStep(st covState, in *ptx.Instr, kind trace.OpKind, private bool) bool {
	covered := false
	switch {
	case in.Op == ptx.OpBar || in.Op == ptx.OpMembar ||
		in.Op == ptx.OpAtom || in.Op == ptx.OpRed:
		// Synchronization changes the epoch structure: drop everything.
		for k := range st {
			delete(st, k)
		}
	case (kind == trace.OpRead || kind == trace.OpWrite) && !private:
		if a, ok := in.AddrOperand(); ok && a.BaseReg != "" && in.Guard == nil {
			k := covKey{a.BaseReg, a.Off}
			prev, seen := st[k]
			if seen && (prev == kind || prev == trace.OpWrite && kind == trace.OpRead) {
				covered = true
			} else if !seen || prev == trace.OpRead && kind == trace.OpWrite {
				st[k] = kind
			}
		}
	}
	if in.HasDst && in.Dst.Kind == ptx.OpndReg {
		for k := range st {
			if k.reg == in.Dst.Reg {
				delete(st, k)
			}
		}
	}
	return covered
}

// markRedundant extends the paper's intra-block redundant-logging
// optimization across basic blocks: an access is redundant when, on every
// CFG path into it, an at-least-as-strong access to the same base
// register + offset was logged with no synchronization or register
// redefinition in between.
func markRedundant(c *kernel.CFG, class map[int]trace.OpKind, res *PruneResult) {
	flow := SolveForward(c, Problem[covState]{
		Entry: func() covState { return covState{} },
		Clone: cloneCov,
		Join:  joinCov,
		Transfer: func(b *kernel.Block, in covState) covState {
			st := cloneCov(in)
			for i := b.Start; i < b.End; i++ {
				covStep(st, c.Instrs[i], class[i], res.Reason[i] == PrunePrivate)
			}
			return st
		},
		Equal: equalCov,
	})
	for bi, b := range c.Blocks {
		if !flow.Reached[bi] {
			continue
		}
		st := cloneCov(flow.In[bi])
		for i := b.Start; i < b.End; i++ {
			if covStep(st, c.Instrs[i], class[i], res.Reason[i] == PrunePrivate) &&
				res.Reason[i] == PruneNone {
				res.Reason[i] = PruneRedundant
				res.Redundant++
			}
		}
	}
}
