// Package staticanalysis is a reusable dataflow framework over the
// kernel CFG (worklist solver, reaching definitions, tid/ctaid-affine
// symbolic index analysis) plus the clients built on it:
//
//   - an inter-block instrumentation pruner that extends BARRACUDA's
//     intra-basic-block redundant-logging optimization (§4.1) across
//     basic blocks, and drops accesses the affine analysis proves
//     thread-private (consumed by instrument.Options.StaticPrune);
//   - a lint pass producing structured diagnostics with PTX source
//     positions: barrier divergence, unreachable code, missing-fence
//     heuristics, and unsynchronized shared-memory reads (consumed by
//     `barracuda vet` and barracudad's /v1/analyze endpoint).
//
// The conservatism contract: every verdict that removes logging is an
// under-approximation — any access the analysis cannot *prove* safe
// stays instrumented, so detection results are unchanged while dynamic
// log volume drops. Lint verdicts are the opposite trade: advisory
// over-approximations that may flag code a deeper analysis could
// exonerate, which is why they are diagnostics and never prune anything.
package staticanalysis

import (
	"barracuda/internal/kernel"
	"barracuda/internal/trace"
)

// Analysis bundles the static-analysis results for one kernel CFG.
type Analysis struct {
	CFG    *kernel.CFG
	Class  map[int]trace.OpKind
	Affine *Affine
	Prune  *PruneResult
}

// Analyze runs the full analysis pipeline on a kernel CFG, classifying
// trace operations itself.
func Analyze(c *kernel.CFG) *Analysis { return AnalyzeCFG(c, trace.Classify(c)) }

// AnalyzeCFG runs the pipeline with a caller-provided trace
// classification (the instrumenter already has one).
func AnalyzeCFG(c *kernel.CFG, class map[int]trace.OpKind) *Analysis {
	aff := computeAffine(c)
	return &Analysis{
		CFG:    c,
		Class:  class,
		Affine: aff,
		Prune:  computePrune(c, class, aff),
	}
}
