package staticanalysis

import (
	"testing"

	"barracuda/internal/ptx"
)

// gtidKernel computes the canonical global-thread-id strided address:
// out + (ctaid.x*ntid.x + tid.x)*8 + 4.
const gtidKernel = `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;
	mul.lo.u32 %r5, %r4, 8;
	cvt.u64.u32 %rd2, %r5;
	add.u64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3+4], %r4;
	ret;
}`

func TestAffineGtidAddress(t *testing.T) {
	c := buildCFG(t, gtidKernel)
	aff := computeAffine(c)
	stIdx := -1
	for i, in := range c.Instrs {
		if in.Op == ptx.OpSt {
			stIdx = i
		}
	}
	v, ok := aff.addr[stIdx]
	if !ok || !v.affine {
		t.Fatalf("store address not affine: %v", v)
	}
	if v.c != 4 {
		t.Errorf("const = %d, want 4", v.c)
	}
	want := map[term]int64{
		{kind: termParam, name: "out+0"}: 1,
		{kind: termTid, axis: 0}:         8,
		{kind: termBlockBase, axis: 0}:   8,
	}
	if len(v.terms) != len(want) {
		t.Fatalf("terms = %v, want %v", v.terms, want)
	}
	for tm, co := range want {
		if v.terms[tm] != co {
			t.Errorf("coeff(%v) = %d, want %d (value %v)", tm, v.terms[tm], co, v)
		}
	}
	if !v.taint {
		t.Error("tid-derived address must be tainted")
	}
}

func TestAffineGuardTaint(t *testing.T) {
	c := buildCFG(t, `.visible .entry k(.param .u32 n) {
	.reg .u32 %r<8>;
	.reg .pred %p<4>;
	ld.param.u32 %r5, [n];
	mov.u32 %r1, %tid.x;
	setp.lt.u32 %p1, %r1, 16;
	setp.lt.u32 %p2, %r5, 16;
	@%p1 bra A;
A:
	@%p2 bra B;
B:
	ret;
}`)
	aff := computeAffine(c)
	var tidBra, uniBra = -1, -1
	for i, in := range c.Instrs {
		if in.Op == ptx.OpBra && in.Guard != nil {
			if in.Guard.Reg == "%p1" {
				tidBra = i
			} else {
				uniBra = i
			}
		}
	}
	if !aff.GuardTainted(tidBra) {
		t.Error("tid-derived guard must be tainted")
	}
	if aff.GuardTainted(uniBra) {
		t.Error("param-derived guard must not be tainted")
	}
}

// TestAffineJoinAgreement: a register set to the same affine value on
// both arms of a diamond keeps it; disagreement degrades to unknown.
func TestAffineJoinAgreement(t *testing.T) {
	c := buildCFG(t, `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	setp.eq.u32 %p1, %r1, 0;
	@%p1 bra THEN;
	add.u64 %rd2, %rd1, 8;
	bra.uni JOIN;
THEN:
	add.u64 %rd2, %rd1, 8;
JOIN:
	st.global.u32 [%rd2], %r1;
	ret;
}`)
	aff := computeAffine(c)
	for i, in := range c.Instrs {
		if in.Op == ptx.OpSt {
			v, ok := aff.addr[i]
			if !ok || !v.affine || v.c != 8 {
				t.Errorf("join address = %v, want affine out+8", v)
			}
			_ = in
		}
	}
}

func TestAffineShlAndSub(t *testing.T) {
	c := buildCFG(t, `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 3;
	sub.u32 %r3, %r2, 8;
	cvt.u64.u32 %rd2, %r3;
	add.u64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3], %r1;
	ret;
}`)
	aff := computeAffine(c)
	for i, in := range c.Instrs {
		if in.Op == ptx.OpSt {
			v := aff.addr[i]
			if !v.affine || v.c != -8 || v.terms[term{kind: termTid, axis: 0}] != 8 {
				t.Errorf("address = %v, want out + 8*tid.x - 8", v)
			}
		}
	}
}

// TestAffineNonAffineOp: a bitwise op produces unknown but keeps taint.
func TestAffineNonAffineOp(t *testing.T) {
	c := buildCFG(t, `.visible .entry k(.param .u64 out) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	and.b32 %r2, %r1, 15;
	cvt.u64.u32 %rd2, %r2;
	add.u64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3], %r1;
	ret;
}`)
	aff := computeAffine(c)
	for i, in := range c.Instrs {
		if in.Op == ptx.OpSt {
			v := aff.addr[i]
			if v.affine {
				t.Errorf("and-derived address must be unknown, got %v", v)
			}
			if !v.taint {
				t.Error("taint must survive the non-affine op")
			}
		}
	}
}
