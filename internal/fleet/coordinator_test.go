package fleet

import (
	"fmt"
	"testing"
	"time"

	"barracuda/internal/server"
)

// fakeFleet drives a Coordinator through its passive event interface,
// tracking assignments the way a driver would.
type fakeFleet struct {
	t     *testing.T
	c     *Coordinator
	now   time.Time
	onjob map[string]string // job ID → node currently running it
}

func newFakeFleet(t *testing.T, opt Options, nodes int, capacity int) *fakeFleet {
	f := &fakeFleet{
		t: t, c: NewCoordinator(opt),
		now:   time.Unix(10_000, 0),
		onjob: make(map[string]string),
	}
	for i := 0; i < nodes; i++ {
		f.record(f.c.Join(fmt.Sprintf("node-%02d", i), "test://", capacity, f.now))
	}
	return f
}

func (f *fakeFleet) record(asgs []Assignment) {
	f.t.Helper()
	for _, a := range asgs {
		for _, ex := range a.Job.Excluded() {
			if ex == a.Node {
				f.t.Fatalf("job %s assigned to excluded node %s", a.Job.ID, a.Node)
			}
		}
		f.onjob[a.Job.ID] = a.Node
	}
}

func (f *fakeFleet) submit(id, key, class string) {
	f.t.Helper()
	asgs, err := f.c.Submit(&Job{ID: id, Key: key, Class: class}, f.now)
	if err != nil {
		f.t.Fatalf("submit %s: %v", id, err)
	}
	f.record(asgs)
}

func (f *fakeFleet) complete(id string) {
	f.t.Helper()
	node, ok := f.onjob[id]
	if !ok {
		f.t.Fatalf("complete %s: not running", id)
	}
	delete(f.onjob, id)
	asgs, live := f.c.Complete(node, id, false)
	if !live {
		f.t.Fatalf("complete %s: coordinator says the assignment is stale", id)
	}
	f.record(asgs)
}

func TestSubmitNoNodes(t *testing.T) {
	c := NewCoordinator(Options{})
	if _, err := c.Submit(&Job{ID: "j", Key: "k"}, time.Now()); err != ErrNoNodes {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
}

func TestRoutingFollowsRing(t *testing.T) {
	f := newFakeFleet(t, Options{}, 4, 2)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		id := fmt.Sprintf("j-%d", i)
		f.submit(id, key, server.ClassBatch)
		want := f.c.ring.Primary(key)
		if got := f.onjob[id]; got != want {
			t.Fatalf("job %s (key %s) on %s, ring primary is %s", id, key, got, want)
		}
		f.complete(id)
	}
	st := f.c.Stats()
	if st.PrimaryHits != st.Dispatched {
		t.Fatalf("idle fleet: %d/%d dispatches on primary, want all", st.PrimaryHits, st.Dispatched)
	}
}

// Reserved slot: batch can occupy at most capacity-1 slots of a node, so
// an interactive job submitted into a batch flood dispatches immediately.
func TestInteractiveReservedSlotAndQueueJump(t *testing.T) {
	f := newFakeFleet(t, Options{NoSpill: true}, 1, 3)
	// Saturate the batch share (cap 3 → batchCap 2) and build a backlog.
	for i := 0; i < 5; i++ {
		f.submit(fmt.Sprintf("b-%d", i), "key", server.ClassBatch)
	}
	running := len(f.onjob)
	if running != 2 {
		t.Fatalf("%d batch running, want 2 (reserved slot must stay free)", running)
	}
	// Interactive lands instantly in the reserved slot, past 3 queued batch.
	f.submit("i-0", "key", server.ClassInteractive)
	if _, ok := f.onjob["i-0"]; !ok {
		t.Fatal("interactive job queued behind batch backlog")
	}
	if st := f.c.Stats(); st.QueueJumps == 0 {
		t.Fatal("queue-jump not counted")
	}
	// A second interactive has no free slot and must wait...
	f.submit("i-1", "key", server.ClassInteractive)
	if _, ok := f.onjob["i-1"]; ok {
		t.Fatal("interactive dispatched with zero free slots")
	}
	// ...but dispatches before any queued batch when a batch job finishes.
	f.complete("b-0")
	if _, ok := f.onjob["i-1"]; !ok {
		t.Fatal("freed slot went to batch before queued interactive")
	}
}

func TestRetryWithExclusionWalksRing(t *testing.T) {
	f := newFakeFleet(t, Options{MaxAttempts: 4}, 4, 1)
	f.submit("j", "some-key", server.ClassBatch)

	seq := f.c.ring.Sequence("some-key")
	visited := []string{f.onjob["j"]}
	for i := 0; i < 2; i++ {
		node := f.onjob["j"]
		delete(f.onjob, "j")
		asgs, outcome := f.c.Fail(node, "j", true)
		if outcome != FailRequeued {
			t.Fatalf("fail %d: outcome %v, want FailRequeued", i+1, outcome)
		}
		f.record(asgs)
		next, ok := f.onjob["j"]
		if !ok {
			t.Fatalf("fail %d: job not re-dispatched", i+1)
		}
		visited = append(visited, next)
	}
	// Failover must walk the ring sequence in order, never revisiting.
	for i, n := range visited {
		if n != seq[i] {
			t.Fatalf("attempt %d on %s, want ring successor %s (seq %v, visited %v)",
				i+1, n, seq[i], seq, visited)
		}
	}
	// Fourth dispatch is attempt 4 = MaxAttempts; its failure is permanent.
	node := f.onjob["j"]
	delete(f.onjob, "j")
	asgs, outcome := f.c.Fail(node, "j", true)
	f.record(asgs)
	if outcome != FailRequeued {
		t.Fatal("attempt 3 failure should still requeue (MaxAttempts=4)")
	}
	node = f.onjob["j"]
	if _, outcome = f.c.Fail(node, "j", true); outcome != FailTerminal {
		t.Fatalf("past MaxAttempts: outcome %v, want FailTerminal", outcome)
	}
	if st := f.c.Stats(); st.FailedPerm != 1 {
		t.Fatalf("FailedPerm = %d, want 1", st.FailedPerm)
	}
}

func TestPermanentFailureNotRetried(t *testing.T) {
	f := newFakeFleet(t, Options{}, 2, 1)
	f.submit("j", "k", server.ClassBatch)
	node := f.onjob["j"]
	if _, outcome := f.c.Fail(node, "j", false); outcome != FailTerminal {
		t.Fatalf("non-retryable failure: outcome %v, want FailTerminal", outcome)
	}
}

// Dead-node eviction: jobs in flight on a node that misses heartbeats
// past DeadAfter are requeued with that node excluded and re-routed.
func TestTickEvictsDeadNodeAndRequeues(t *testing.T) {
	f := newFakeFleet(t, Options{SuspectAfter: 2 * time.Second, DeadAfter: 6 * time.Second}, 3, 2)
	var mine string
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("key-%d", i)
		if f.c.ring.Primary(key) == "node-00" {
			mine = key
			break
		}
	}
	if mine == "" {
		t.Fatal("no key routed to node-00")
	}
	f.submit("j", mine, server.ClassBatch)
	if f.onjob["j"] != "node-00" {
		t.Fatalf("setup: job on %s", f.onjob["j"])
	}

	// Everyone else keeps beating; node-00 goes silent.
	beat := func(at time.Time) {
		for _, id := range []string{"node-01", "node-02"} {
			_, asgs := f.c.Heartbeat(id, server.HeartbeatStats{}, at)
			f.record(asgs)
		}
	}
	beat(f.now.Add(3 * time.Second))
	f.record(f.c.Tick(f.now.Add(3 * time.Second))) // node-00 suspect
	if n, _ := f.c.Node("node-00"); n.State != StateSuspect {
		t.Fatalf("node-00 state %v, want suspect", n.State)
	}
	if f.c.InFlight() != 1 {
		t.Fatal("suspect transition must not requeue in-flight work")
	}

	beat(f.now.Add(7 * time.Second))
	delete(f.onjob, "j")
	f.record(f.c.Tick(f.now.Add(7 * time.Second))) // node-00 dead
	if _, ok := f.c.Node("node-00"); ok {
		t.Fatal("dead node still registered")
	}
	node, ok := f.onjob["j"]
	if !ok {
		t.Fatal("evicted job not re-dispatched")
	}
	if node == "node-00" {
		t.Fatal("job re-routed to the dead node")
	}
	if st := f.c.Stats(); st.Requeued != 1 {
		t.Fatalf("Requeued = %d, want 1", st.Requeued)
	}
}

// A failure report for an assignment the coordinator already evicted
// and re-routed is stale, not terminal: the HTTP forwarder's poll can
// outlive DeadAfter, so by the time the old forward errors out the job
// may be running (or done) on another node. Treating that report as a
// permanent failure would tell the client the job failed even though
// the retry completes (the reviewer's zero-job-loss hole).
func TestStaleFailureReportIgnored(t *testing.T) {
	f := newFakeFleet(t, Options{SuspectAfter: 2 * time.Second, DeadAfter: 6 * time.Second}, 3, 2)
	f.submit("j", "k", server.ClassBatch)
	first := f.onjob["j"]

	// Everyone but the job's node keeps beating; the job's node dies.
	beat := func(at time.Time) {
		for i := 0; i < 3; i++ {
			id := fmt.Sprintf("node-%02d", i)
			if id == first {
				continue
			}
			_, asgs := f.c.Heartbeat(id, server.HeartbeatStats{}, at)
			f.record(asgs)
		}
	}
	beat(f.now.Add(7 * time.Second))
	f.record(f.c.Tick(f.now.Add(7 * time.Second))) // first declared dead, job re-routed
	second, ok := f.onjob["j"]
	if !ok || second == first {
		t.Fatalf("evicted job on %q (was %q), want re-dispatch elsewhere", second, first)
	}

	// The old forward finally reports its connection error.
	asgs, outcome := f.c.Fail(first, "j", true)
	f.record(asgs)
	if outcome != FailStale {
		t.Fatalf("stale failure report: outcome %v, want FailStale", outcome)
	}
	if f.c.InFlight() != 1 {
		t.Fatalf("stale report perturbed the live attempt: %d in flight, want 1", f.c.InFlight())
	}
	if st := f.c.Stats(); st.FailedPerm != 0 {
		t.Fatalf("stale report counted as permanent failure (FailedPerm=%d)", st.FailedPerm)
	}

	// Same for a stale completion: only the live assignment counts.
	if _, live := f.c.Complete(first, "j", false); live {
		t.Fatal("stale completion reported as live")
	}
	if _, live := f.c.Complete(second, "j", false); !live {
		t.Fatal("live completion reported as stale")
	}
	if st := f.c.Stats(); st.Completed != 1 {
		t.Fatalf("Completed = %d, want 1", st.Completed)
	}
}

// Suspect nodes get no NEW work but a heartbeat revives them and drains
// the queue to them again.
func TestSuspectExcludedFromRoutingUntilRevived(t *testing.T) {
	f := newFakeFleet(t, Options{SuspectAfter: 2 * time.Second, DeadAfter: 20 * time.Second}, 1, 2)
	f.record(f.c.Tick(f.now.Add(3 * time.Second)))
	f.submit("j", "k", server.ClassBatch)
	if len(f.onjob) != 0 {
		t.Fatal("job dispatched to a suspect node")
	}
	_, asgs := f.c.Heartbeat("node-00", server.HeartbeatStats{}, f.now.Add(4*time.Second))
	f.record(asgs)
	if _, ok := f.onjob["j"]; !ok {
		t.Fatal("revived node did not drain the queue")
	}
}

func TestLeaveRequeuesInOrder(t *testing.T) {
	f := newFakeFleet(t, Options{NoSpill: true}, 1, 3)
	f.submit("j-0", "k", server.ClassBatch)
	f.submit("j-1", "k", server.ClassBatch)
	if len(f.onjob) != 2 {
		t.Fatalf("setup: %d running, want 2", len(f.onjob))
	}
	f.onjob = map[string]string{}
	f.record(f.c.Leave("node-00"))
	if len(f.onjob) != 0 {
		t.Fatal("jobs dispatched with an empty fleet")
	}
	// A fresh node picks the requeued jobs back up in submission order.
	f.record(f.c.Join("node-99", "test://", 3, f.now))
	if f.onjob["j-0"] != "node-99" || f.onjob["j-1"] != "node-99" {
		t.Fatalf("requeued jobs not re-dispatched: %v", f.onjob)
	}
}

func TestBatchSpillToIdle(t *testing.T) {
	f := newFakeFleet(t, Options{}, 2, 2)
	// Find a key whose primary is node-00, saturate its batch share.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("key-%d", i)
		if f.c.ring.Primary(key) == "node-00" {
			break
		}
	}
	f.submit("b-0", key, server.ClassBatch) // node-00 batchCap=1 → saturated
	f.submit("b-1", key, server.ClassBatch) // primary busy, node-01 idle → spill
	if f.onjob["b-1"] != "node-01" {
		t.Fatalf("job b-1 on %s, want spill to idle node-01", f.onjob["b-1"])
	}
	if st := f.c.Stats(); st.Spills != 1 {
		t.Fatalf("Spills = %d, want 1", st.Spills)
	}

	// With NoSpill the same shape queues instead.
	f2 := newFakeFleet(t, Options{NoSpill: true}, 2, 2)
	f2.submit("b-0", key, server.ClassBatch)
	f2.submit("b-1", key, server.ClassBatch)
	if _, ok := f2.onjob["b-1"]; ok {
		t.Fatal("NoSpill coordinator spilled anyway")
	}
}

func TestRandomRoutingDeterministicPerSeed(t *testing.T) {
	place := func(seed int64) []string {
		f := newFakeFleet(t, Options{RandomRouting: true, RandSeed: seed}, 4, 2)
		var out []string
		for i := 0; i < 40; i++ {
			id := fmt.Sprintf("j-%d", i)
			f.submit(id, fmt.Sprintf("key-%d", i%8), server.ClassBatch)
			out = append(out, f.onjob[id])
			f.complete(id)
		}
		return out
	}
	a, b := place(7), place(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at job %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := place(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical placements (suspicious)")
	}
}
