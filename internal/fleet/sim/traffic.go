package sim

import (
	"fmt"
	"math/rand"

	"barracuda/internal/server"
)

// Traffic shapes.
const (
	TrafficUniform = "uniform" // keys uniform over Keys, all batch
	TrafficZipf    = "zipf"    // zipf-skewed keys (hot modules), all batch
	TrafficMixed   = "mixed"   // zipf keys + InteractiveFrac interactive jobs
)

// generator produces the synthetic job stream. It owns its PRNG (seeded
// independently of the service-time and fault PRNGs) so changing, say,
// the jitter model never perturbs which jobs arrive — schedules stay
// comparable across sim changes that don't touch traffic.
type generator struct {
	cfg  Config
	rnd  *rand.Rand
	zipf *rand.Zipf
	n    int
}

func newGenerator(cfg Config) (*generator, error) {
	g := &generator{cfg: cfg, rnd: rand.New(rand.NewSource(cfg.Seed + 1))}
	switch cfg.Traffic {
	case TrafficUniform:
	case TrafficZipf, TrafficMixed:
		// s>1 required by rand.Zipf; 1.2 gives the classic "few hot
		// modules, long cold tail" shape of repeated CI submissions.
		g.zipf = rand.NewZipf(g.rnd, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	default:
		return nil, fmt.Errorf("sim: unknown traffic shape %q", cfg.Traffic)
	}
	return g, nil
}

// spec is the sim-side payload of one job.
type spec struct {
	payload    uint64 // content seed: the job's deterministic "result"
	submitUS   int64
	dispatchUS int64 // first dispatch (starvation metric)
	warm       bool  // last assignment hit the worker cache
}

// next mints job i. The returned interarrival gap (µs) separates it
// from the next arrival.
func (g *generator) next() (id, key, class string, payload uint64, gapUS int64) {
	var idx uint64
	switch g.cfg.Traffic {
	case TrafficUniform:
		idx = uint64(g.rnd.Intn(g.cfg.Keys))
	default:
		idx = g.zipf.Uint64()
	}
	class = server.ClassBatch
	if g.cfg.Traffic == TrafficMixed && g.rnd.Float64() < g.cfg.InteractiveFrac {
		class = server.ClassInteractive
	}
	id = fmt.Sprintf("j-%07d", g.n)
	g.n++
	key = fmt.Sprintf("key-%05d", idx)
	payload = g.rnd.Uint64()
	gap := g.rnd.ExpFloat64() / g.cfg.ArrivalRate // seconds
	gapUS = int64(gap * 1e6)
	if gapUS < 1 {
		gapUS = 1
	}
	return id, key, class, payload, gapUS
}
