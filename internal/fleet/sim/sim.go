// Package sim is the deterministic in-process cluster simulator for the
// fleet control plane: N coordinator-attached fake workers driven by a
// seeded PRNG and a virtual clock, with injected crashes, slow nodes
// and heartbeat loss. It drives the *real* fleet.Coordinator — the same
// ring, registry, retry and priority code the HTTP front-end runs — so
// routing, failover and preemption are testable at millions-of-jobs
// scale with no real machines and byte-reproducible schedules: the same
// seed and traffic spec produce the same schedule digest, run after
// run, with or without -race.
package sim

import (
	"container/heap"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"barracuda/internal/fleet"
	"barracuda/internal/server"
)

// Crash kills node index Node at virtual time AtMS. Crashed nodes stop
// heartbeating, drop their cache and refuse new connections; they do
// not come back (a restart would be a fresh Join, which the fleet
// handles but the scripted scenarios here don't need).
type Crash struct {
	Node int
	AtMS float64
}

// Config is one simulated scenario. The zero value of most knobs picks
// a sensible default (see withDefaults).
type Config struct {
	Seed  int64
	Nodes int
	// Capacity is the per-node concurrent job slots (default 2).
	Capacity int
	// CacheSlots bounds each worker's simulated module-session LRU
	// (default 16). Smaller than Keys, or routing policy can't matter.
	CacheSlots int
	Jobs       int
	// Traffic is one of TrafficUniform, TrafficZipf, TrafficMixed.
	Traffic string
	// Keys is the distinct module cache-key population (default 64).
	Keys int
	// ZipfS is the zipf skew exponent, >1 (default 1.2).
	ZipfS float64
	// InteractiveFrac is the interactive share under TrafficMixed
	// (default 0.2).
	InteractiveFrac float64
	// ArrivalRate is mean arrivals per virtual second (default: 70% of
	// fleet batch-service capacity, so queues stay bounded).
	ArrivalRate float64
	// Service times (virtual ms) before warm/slow/jitter scaling.
	BatchServiceMS       float64 // default 8
	InteractiveServiceMS float64 // default 1
	// WarmFactor scales service time on a cache hit (default 0.25).
	WarmFactor float64
	// JitterFrac: service time is scaled by 1±JitterFrac uniformly
	// (default 0.2).
	JitterFrac float64
	// HeartbeatMS is the worker beat interval (default 1000 virtual ms);
	// suspect/dead thresholds default to 2.5x / 5x.
	HeartbeatMS    float64
	SuspectAfterMS float64
	DeadAfterMS    float64
	// HeartbeatLossP drops individual beats with this probability,
	// exercising the suspect→revive path without any real fault.
	HeartbeatLossP float64
	// Crashes scripts permanent node failures.
	Crashes []Crash
	// SlowFactor scales a node's service time (index → multiplier >1).
	SlowFactor map[int]float64
	// RandomRouting switches the coordinator to the seeded-random
	// placement baseline (the A/B control for warm routing).
	RandomRouting bool
	// NoSpill disables batch spill-to-idle (see fleet.Options.NoSpill):
	// batch jobs then always wait for their warm primary, trading queue
	// delay for maximum cache affinity.
	NoSpill bool
	// MaxAttempts per job (default 5).
	MaxAttempts int
	// Replicas per ring node (default 128).
	Replicas int
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.Capacity <= 0 {
		c.Capacity = 2
	}
	if c.CacheSlots <= 0 {
		c.CacheSlots = 16
	}
	if c.Jobs <= 0 {
		c.Jobs = 10000
	}
	if c.Traffic == "" {
		c.Traffic = TrafficZipf
	}
	if c.Keys <= 0 {
		c.Keys = 64
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.InteractiveFrac <= 0 {
		c.InteractiveFrac = 0.2
	}
	if c.BatchServiceMS <= 0 {
		c.BatchServiceMS = 8
	}
	if c.InteractiveServiceMS <= 0 {
		c.InteractiveServiceMS = 1
	}
	if c.WarmFactor <= 0 {
		c.WarmFactor = 0.25
	}
	if c.JitterFrac < 0 {
		c.JitterFrac = 0
	} else if c.JitterFrac == 0 {
		c.JitterFrac = 0.2
	}
	if c.ArrivalRate <= 0 {
		perNode := 1000 / c.BatchServiceMS * float64(c.Capacity)
		c.ArrivalRate = 0.7 * perNode * float64(c.Nodes)
	}
	if c.HeartbeatMS <= 0 {
		c.HeartbeatMS = 1000
	}
	if c.SuspectAfterMS <= 0 {
		c.SuspectAfterMS = 2.5 * c.HeartbeatMS
	}
	if c.DeadAfterMS <= c.SuspectAfterMS {
		c.DeadAfterMS = 5 * c.HeartbeatMS
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	return c
}

// Result is everything a scenario run measured.
type Result struct {
	Nodes     int    `json:"nodes"`
	Jobs      int    `json:"jobs"`
	Traffic   string `json:"traffic"`
	Seed      int64  `json:"seed"`
	Routing   string `json:"routing"` // "ring" | "random"
	Submitted int    `json:"submitted"`
	Completed int    `json:"completed"`
	// Lost = submitted − completed: permanently failed or stranded
	// (every healthy run must report 0).
	Lost       int   `json:"lost"`
	Retries    int64 `json:"retries"`
	Requeued   int64 `json:"requeued"`
	QueueJumps int64 `json:"queue_jumps"`
	Spills     int64 `json:"spills"`
	Dispatched int64 `json:"dispatched"`
	// WarmHits / HitRate measure routing quality: completions whose
	// worker already had the module key cached.
	WarmHits int64   `json:"warm_hits"`
	HitRate  float64 `json:"hit_rate"`
	// PrimaryFrac is the share of dispatches landing on the ring
	// primary (1.0 = pure affinity; drops under failover/spill).
	PrimaryFrac float64 `json:"primary_frac"`
	MakespanMS  float64 `json:"makespan_ms"` // virtual, last completion
	JobsPerSec  float64 `json:"jobs_per_sec"`
	// Wait = submit → first dispatch, the starvation metric.
	InteractiveP99WaitMS float64 `json:"interactive_p99_wait_ms"`
	InteractiveMaxWaitMS float64 `json:"interactive_max_wait_ms"`
	BatchP99WaitMS       float64 `json:"batch_p99_wait_ms"`
	// ExcludedViolations counts assignments to a node the job had
	// already been excluded from — must be 0 (retry-with-exclusion
	// contract).
	ExcludedViolations int `json:"excluded_violations"`
	// ScheduleDigest hashes every scheduling event in virtual-time
	// order; ReportDigest hashes the jobs' deterministic results
	// (sorted by job ID, so it is routing-independent by construction
	// *iff* no job is lost or duplicated).
	ScheduleDigest string  `json:"schedule_digest"`
	ReportDigest   string  `json:"report_digest"`
	WallMS         float64 `json:"wall_ms"`
}

// Event kinds, in tie-break priority order at equal virtual times.
const (
	evArrival = iota
	evDone
	evConnFail
	evBeat
	evTick
	evCrash
)

type event struct {
	atUS int64
	seq  int64 // creation order: total tie-break, so heap order is unique
	kind int
	node string
	job  string
	gen  int // worker incarnation for evDone validity
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].atUS != h[j].atUS {
		return h[i].atUS < h[j].atUS
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// worker is one simulated barracudad.
type worker struct {
	id      string
	idx     int
	alive   bool
	gen     int // bumped on crash; stale evDone events check it
	slow    float64
	cache   *lruSet
	running map[string]*fleet.Job
	hits    int64
	misses  int64
}

// lruSet models the worker's bounded module-session cache: membership
// plus LRU eviction, nothing else — warm routing only needs "was this
// key still resident".
type lruSet struct {
	cap   int
	order []string
	in    map[string]bool
}

func newLRUSet(cap int) *lruSet {
	return &lruSet{cap: cap, in: make(map[string]bool, cap)}
}

// touch returns whether key was resident, then makes it MRU.
func (l *lruSet) touch(key string) bool {
	hit := l.in[key]
	if hit {
		for i, k := range l.order {
			if k == key {
				l.order = append(l.order[:i], l.order[i+1:]...)
				break
			}
		}
	}
	l.order = append(l.order, key)
	l.in[key] = true
	if len(l.order) > l.cap {
		evict := l.order[0]
		l.order = l.order[1:]
		delete(l.in, evict)
	}
	return hit
}

func (l *lruSet) clear() {
	l.order = l.order[:0]
	l.in = make(map[string]bool, l.cap)
}

type sim struct {
	cfg   Config
	coord *fleet.Coordinator
	gen   *generator
	svc   *rand.Rand // service-time jitter
	flt   *rand.Rand // fault injection (heartbeat loss)

	events  eventHeap
	evSeq   int64
	nowUS   int64
	workers map[string]*worker
	order   []string // worker IDs by index

	specs    map[string]*spec
	reports  map[string]string
	arrived  int
	done     int
	lostPerm int
	lastDone int64

	waitInter []float64
	waitBatch []float64

	excludedViolations int

	digest hashWriter
}

// hashWriter accumulates the schedule digest.
type hashWriter struct{ h []byte }

func (w *hashWriter) init() { w.h = make([]byte, 0, 1<<16) }
func (w *hashWriter) addf(f string, a ...any) {
	w.h = append(w.h, fmt.Sprintf(f, a...)...)
	w.h = append(w.h, '\n')
	if len(w.h) >= 1<<16 {
		w.fold()
	}
}
func (w *hashWriter) fold() {
	sum := sha256.Sum256(w.h)
	w.h = append(w.h[:0], sum[:]...)
}
func (w *hashWriter) hex() string {
	w.fold()
	return hex.EncodeToString(w.h)
}

// Run executes one scenario to completion and returns its measurements.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	gen, err := newGenerator(cfg)
	if err != nil {
		return Result{}, err
	}
	if len(cfg.Crashes) >= cfg.Nodes {
		return Result{}, fmt.Errorf("sim: %d crashes would kill all %d nodes", len(cfg.Crashes), cfg.Nodes)
	}
	s := &sim{
		cfg: cfg,
		gen: gen,
		svc: rand.New(rand.NewSource(cfg.Seed + 2)),
		flt: rand.New(rand.NewSource(cfg.Seed + 3)),
		coord: fleet.NewCoordinator(fleet.Options{
			Replicas:      cfg.Replicas,
			MaxAttempts:   cfg.MaxAttempts,
			SuspectAfter:  msDur(cfg.SuspectAfterMS),
			DeadAfter:     msDur(cfg.DeadAfterMS),
			RandomRouting: cfg.RandomRouting,
			NoSpill:       cfg.NoSpill,
			RandSeed:      cfg.Seed + 4,
		}),
		workers: make(map[string]*worker, cfg.Nodes),
		specs:   make(map[string]*spec, cfg.Jobs),
		reports: make(map[string]string, cfg.Jobs),
	}
	s.digest.init()
	start := time.Now()

	for i := 0; i < cfg.Nodes; i++ {
		id := fmt.Sprintf("node-%02d", i)
		w := &worker{
			id: id, idx: i, alive: true, slow: 1,
			cache:   newLRUSet(cfg.CacheSlots),
			running: make(map[string]*fleet.Job),
		}
		if f, ok := cfg.SlowFactor[i]; ok && f > 0 {
			w.slow = f
		}
		s.workers[id] = w
		s.order = append(s.order, id)
		s.perform(s.coord.Join(id, "sim://"+id, cfg.Capacity, s.vnow()))
		s.schedule(int64(cfg.HeartbeatMS*1000), evBeat, id, "", 0)
	}
	for _, cr := range cfg.Crashes {
		if cr.Node < 0 || cr.Node >= cfg.Nodes {
			return Result{}, fmt.Errorf("sim: crash node %d out of range", cr.Node)
		}
		s.schedule(int64(cr.AtMS*1000), evCrash, s.order[cr.Node], "", 0)
	}
	s.schedule(int64(cfg.HeartbeatMS*500), evTick, "", "", 0)
	s.schedule(0, evArrival, "", "", 0)

	// Hard ceiling so a mis-scripted scenario (every node dead, queue
	// stranded) terminates instead of ticking forever.
	horizonUS := int64(float64(cfg.Jobs)/cfg.ArrivalRate*1e6) * 20
	if min := int64(120 * 1e6); horizonUS < min {
		horizonUS = min
	}

	for len(s.events) > 0 && s.done+s.lostPerm < cfg.Jobs {
		e := heap.Pop(&s.events).(*event)
		if e.atUS > horizonUS {
			break
		}
		s.nowUS = e.atUS
		s.step(e)
	}

	res := Result{
		Nodes: cfg.Nodes, Jobs: cfg.Jobs, Traffic: cfg.Traffic, Seed: cfg.Seed,
		Routing:            "ring",
		Submitted:          s.arrived,
		Completed:          s.done,
		Lost:               s.arrived - s.done,
		ExcludedViolations: s.excludedViolations,
		WallMS:             float64(time.Since(start).Microseconds()) / 1000,
	}
	if cfg.RandomRouting {
		res.Routing = "random"
	}
	st := s.coord.Stats()
	res.Retries = st.Retries
	res.Requeued = st.Requeued
	res.QueueJumps = st.QueueJumps
	res.Spills = st.Spills
	res.Dispatched = st.Dispatched
	res.WarmHits = st.WarmHits
	if res.Completed > 0 {
		res.HitRate = float64(st.WarmHits) / float64(res.Completed)
		res.MakespanMS = float64(s.lastDone) / 1000
		res.JobsPerSec = float64(res.Completed) / (res.MakespanMS / 1000)
	}
	if st.Dispatched > 0 {
		res.PrimaryFrac = float64(st.PrimaryHits) / float64(st.Dispatched)
	}
	res.InteractiveP99WaitMS = percentile(s.waitInter, 0.99)
	res.InteractiveMaxWaitMS = percentile(s.waitInter, 1)
	res.BatchP99WaitMS = percentile(s.waitBatch, 0.99)
	res.ScheduleDigest = s.digest.hex()
	res.ReportDigest = aggregateReports(s.reports)
	return res, nil
}

func msDur(ms float64) time.Duration { return time.Duration(ms * float64(time.Millisecond)) }

func (s *sim) vnow() time.Time { return time.Unix(0, s.nowUS*1000) }

func (s *sim) schedule(atUS int64, kind int, node, job string, gen int) {
	if atUS < s.nowUS {
		atUS = s.nowUS
	}
	s.evSeq++
	heap.Push(&s.events, &event{atUS: atUS, seq: s.evSeq, kind: kind, node: node, job: job, gen: gen})
}

func (s *sim) step(e *event) {
	switch e.kind {
	case evArrival:
		s.arrive()
	case evDone:
		s.finish(e)
	case evConnFail:
		s.connFail(e)
	case evBeat:
		s.beat(e.node)
	case evTick:
		s.perform(s.coord.Tick(s.vnow()))
		s.schedule(s.nowUS+int64(s.cfg.HeartbeatMS*500), evTick, "", "", 0)
	case evCrash:
		s.crash(e.node)
	}
}

func (s *sim) arrive() {
	if s.arrived >= s.cfg.Jobs {
		return
	}
	id, key, class, payload, gapUS := s.gen.next()
	s.arrived++
	s.specs[id] = &spec{payload: payload, submitUS: s.nowUS, dispatchUS: -1}
	s.digest.addf("S|%d|%s|%s|%s", s.nowUS, id, key, class)
	job := &fleet.Job{ID: id, Key: key, Class: class, Payload: payload}
	asgs, err := s.coord.Submit(job, s.vnow())
	if err != nil {
		// No nodes at all: the job is lost (counted via arrived-done).
		s.lostPerm++
		s.digest.addf("L|%d|%s|%v", s.nowUS, id, err)
	} else {
		s.perform(asgs)
	}
	if s.arrived < s.cfg.Jobs {
		s.schedule(s.nowUS+gapUS, evArrival, "", "", 0)
	}
}

// perform executes coordinator assignments against the fake workers.
func (s *sim) perform(asgs []fleet.Assignment) {
	for _, a := range asgs {
		sp := s.specs[a.Job.ID]
		for _, ex := range a.Job.Excluded() {
			if ex == a.Node {
				s.excludedViolations++
			}
		}
		if sp.dispatchUS < 0 {
			sp.dispatchUS = s.nowUS
			wait := float64(s.nowUS-sp.submitUS) / 1000
			if a.Job.Class == server.ClassInteractive {
				s.waitInter = append(s.waitInter, wait)
			} else {
				s.waitBatch = append(s.waitBatch, wait)
			}
		}
		w := s.workers[a.Node]
		if w == nil || !w.alive {
			// Connection refused: the coordinator hasn't noticed this
			// node is gone yet. Small RTT, then a retryable failure —
			// exactly what the HTTP forwarder sees.
			s.digest.addf("R|%d|%s|%s", s.nowUS, a.Job.ID, a.Node)
			s.schedule(s.nowUS+1000, evConnFail, a.Node, a.Job.ID, 0)
			continue
		}
		hit := w.cache.touch(a.Job.Key)
		if hit {
			w.hits++
		} else {
			w.misses++
		}
		sp.warm = hit
		w.running[a.Job.ID] = a.Job
		durUS := s.serviceUS(a.Job.Class, w, hit)
		s.digest.addf("D|%d|%s|%s|%t", s.nowUS, a.Job.ID, a.Node, hit)
		s.schedule(s.nowUS+durUS, evDone, a.Node, a.Job.ID, w.gen)
	}
}

func (s *sim) serviceUS(class string, w *worker, warm bool) int64 {
	base := s.cfg.BatchServiceMS
	if class == server.ClassInteractive {
		base = s.cfg.InteractiveServiceMS
	}
	if warm {
		base *= s.cfg.WarmFactor
	}
	base *= w.slow
	j := s.cfg.JitterFrac
	base *= 1 - j + 2*j*s.svc.Float64()
	us := int64(base * 1000)
	if us < 1 {
		us = 1
	}
	return us
}

func (s *sim) finish(e *event) {
	w := s.workers[e.node]
	if w == nil || w.gen != e.gen {
		return // stale completion from a pre-crash incarnation
	}
	job, ok := w.running[e.job]
	if !ok {
		return
	}
	delete(w.running, e.job)
	sp := s.specs[e.job]
	s.done++
	s.lastDone = s.nowUS
	s.digest.addf("C|%d|%s|%s", s.nowUS, e.job, e.node)
	// The job's "race report" depends only on its content — never on
	// which node ran it or how often it was retried. That is what makes
	// the aggregate report digest routing-invariant.
	s.reports[e.job] = jobReport(job.Key, sp.payload)
	asgs, _ := s.coord.Complete(e.node, e.job, sp.warm)
	s.perform(asgs)
}

func (s *sim) connFail(e *event) {
	s.digest.addf("F|%d|%s|%s", s.nowUS, e.job, e.node)
	asgs, outcome := s.coord.Fail(e.node, e.job, true)
	if outcome == fleet.FailTerminal {
		s.lostPerm++
		s.digest.addf("P|%d|%s", s.nowUS, e.job)
	}
	// FailStale: the coordinator already evicted this node and requeued
	// the job before the connection failure surfaced — the live attempt
	// carries it, nothing was lost.
	s.perform(asgs)
}

func (s *sim) beat(id string) {
	w := s.workers[id]
	if w == nil || !w.alive {
		return // crashed workers stop beating (and never reschedule)
	}
	drop := s.flt.Float64() < s.cfg.HeartbeatLossP
	if !drop {
		stats := server.HeartbeatStats{
			QueueDepth: 0, QueueCap: s.cfg.Capacity,
			InFlight: len(w.running), Workers: s.cfg.Capacity,
			CacheHits: w.hits, CacheMisses: w.misses,
		}
		known, asgs := s.coord.Heartbeat(id, stats, s.vnow())
		if !known {
			// Declared dead (e.g. a heartbeat-loss streak): re-join,
			// like a live worker's join loop on a 404.
			s.digest.addf("J|%d|%s", s.nowUS, id)
			asgs = s.coord.Join(id, "sim://"+id, s.cfg.Capacity, s.vnow())
		}
		s.perform(asgs)
	}
	s.schedule(s.nowUS+int64(s.cfg.HeartbeatMS*1000), evBeat, id, "", 0)
}

func (s *sim) crash(id string) {
	w := s.workers[id]
	if w == nil || !w.alive {
		return
	}
	w.alive = false
	w.gen++
	w.cache.clear()
	s.digest.addf("X|%d|%s", s.nowUS, id)
	// In-flight connections break promptly; fail them in submission
	// order for a deterministic schedule.
	ids := make([]string, 0, len(w.running))
	for jid := range w.running {
		ids = append(ids, jid)
	}
	sort.Strings(ids)
	w.running = make(map[string]*fleet.Job)
	for _, jid := range ids {
		s.schedule(s.nowUS+1000, evConnFail, id, jid, 0)
	}
}

// jobReport is the deterministic stand-in for a detection report: a
// pure function of the job's module key and payload.
func jobReport(key string, payload uint64) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("report|%s|%d", key, payload)))
	return hex.EncodeToString(sum[:8])
}

// aggregateReports folds per-job reports in job-ID order, so the result
// is independent of completion order and node placement.
func aggregateReports(reports map[string]string) string {
	ids := make([]string, 0, len(reports))
	for id := range reports {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	h := sha256.New()
	for _, id := range ids {
		fmt.Fprintf(h, "%s=%s\n", id, reports[id])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(p*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
