package sim

import (
	"testing"
)

// The headline determinism contract: the same seed and scenario produce
// byte-identical schedule and report digests, run after run. CI runs
// this under -race, so goroutine interleaving (there is none — the sim
// is single-threaded by construction) can never leak into schedules.
func TestSameSeedSameDigest(t *testing.T) {
	cfg := Config{Seed: 42, Nodes: 4, Jobs: 3000, Traffic: TrafficMixed,
		HeartbeatLossP: 0.02, Crashes: []Crash{{Node: 1, AtMS: 3000}}}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if b.ScheduleDigest != a.ScheduleDigest {
			t.Fatalf("run %d schedule digest %s != %s", i+2, b.ScheduleDigest, a.ScheduleDigest)
		}
		if b.ReportDigest != a.ReportDigest {
			t.Fatalf("run %d report digest %s != %s", i+2, b.ReportDigest, a.ReportDigest)
		}
	}
}

func TestDifferentSeedDifferentSchedule(t *testing.T) {
	a, err := Run(Config{Seed: 1, Jobs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 2, Jobs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if a.ScheduleDigest == b.ScheduleDigest {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestHealthyRunCompletesEverything(t *testing.T) {
	res, err := Run(Config{Seed: 7, Nodes: 4, Jobs: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 || res.Completed != 5000 {
		t.Fatalf("healthy run: completed %d, lost %d", res.Completed, res.Lost)
	}
	if res.Retries != 0 || res.Requeued != 0 {
		t.Fatalf("healthy run retried %d / requeued %d jobs", res.Retries, res.Requeued)
	}
	if res.ExcludedViolations != 0 {
		t.Fatalf("%d excluded-node violations", res.ExcludedViolations)
	}
	if res.HitRate <= 0 {
		t.Fatal("zipf traffic with warm routing produced zero cache hits")
	}
}

// The failover acceptance test: kill k of N mid-traffic. Zero lost
// jobs, no assignment ever lands on an excluded node, and the aggregate
// report digest is byte-identical to a single-node run of the same
// traffic — failover must not change *what* is computed, only *where*.
func TestFailoverLosesNothingAndReportsMatchSingleNode(t *testing.T) {
	const jobs = 8000
	single, err := Run(Config{Seed: 99, Nodes: 1, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if single.Lost != 0 {
		t.Fatalf("single-node baseline lost %d jobs", single.Lost)
	}

	for _, tc := range []struct {
		name    string
		crashes []Crash
	}{
		{"kill-1-of-4", []Crash{{Node: 0, AtMS: 5000}}},
		{"kill-2-of-4", []Crash{{Node: 0, AtMS: 4000}, {Node: 2, AtMS: 9000}}},
		{"kill-3-of-8", []Crash{{Node: 1, AtMS: 2000}, {Node: 4, AtMS: 6000}, {Node: 7, AtMS: 6000}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nodes := 4
			if tc.name == "kill-3-of-8" {
				nodes = 8
			}
			res, err := Run(Config{Seed: 99, Nodes: nodes, Jobs: jobs, Crashes: tc.crashes})
			if err != nil {
				t.Fatal(err)
			}
			if res.Lost != 0 {
				t.Fatalf("lost %d jobs across %d crashes", res.Lost, len(tc.crashes))
			}
			if res.Retries == 0 {
				t.Fatal("crash scenario saw zero retries — crashes did not bite")
			}
			if res.ExcludedViolations != 0 {
				t.Fatalf("%d assignments routed back to an excluded node", res.ExcludedViolations)
			}
			if res.ReportDigest != single.ReportDigest {
				t.Fatalf("report digest %s != single-node %s: failover changed results",
					res.ReportDigest, single.ReportDigest)
			}
		})
	}
}

// Report digests are also invariant under the routing policy — the
// strongest evidence that routing is purely a performance choice.
func TestReportDigestInvariantUnderRouting(t *testing.T) {
	base := Config{Seed: 5, Nodes: 4, Jobs: 4000}
	ring, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rnd := base
	rnd.RandomRouting = true
	random, err := Run(rnd)
	if err != nil {
		t.Fatal(err)
	}
	if ring.ScheduleDigest == random.ScheduleDigest {
		t.Fatal("ring and random routing produced the same schedule (suspicious)")
	}
	if ring.ReportDigest != random.ReportDigest {
		t.Fatalf("routing policy changed reports: %s vs %s", ring.ReportDigest, random.ReportDigest)
	}
}

// The warm-routing claim at N=4: under zipf traffic with a bounded
// per-node cache, ring routing's hit rate strictly beats the seeded
// random baseline. Moderate load so affinity (not queue overflow
// spill) dominates.
func TestZipfRingRoutingBeatsRandom(t *testing.T) {
	base := Config{Seed: 11, Nodes: 4, Jobs: 6000, Traffic: TrafficZipf,
		Keys: 256, CacheSlots: 24, ArrivalRate: 400}
	ring, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rnd := base
	rnd.RandomRouting = true
	random, err := Run(rnd)
	if err != nil {
		t.Fatal(err)
	}
	if ring.HitRate <= random.HitRate {
		t.Fatalf("ring hit rate %.3f not above random %.3f", ring.HitRate, random.HitRate)
	}
	if ring.PrimaryFrac < 0.5 {
		t.Fatalf("primary-routing fraction %.3f — the ring is not being followed", ring.PrimaryFrac)
	}
}

// Heartbeat loss drives nodes through suspect→revive (and occasionally
// dead→re-join) without losing any work, deterministically.
func TestHeartbeatLossIsSurvivable(t *testing.T) {
	cfg := Config{Seed: 3, Nodes: 4, Jobs: 4000, HeartbeatLossP: 0.3}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Lost != 0 {
		t.Fatalf("lost %d jobs to heartbeat loss alone", a.Lost)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ScheduleDigest != b.ScheduleDigest {
		t.Fatal("heartbeat-loss scenario is nondeterministic")
	}
}

// Mixed traffic under heavy batch load: interactive first-dispatch wait
// stays bounded by roughly one batch service time — the reserved slot
// plus strict queue priority at work — while batch queues far longer.
func TestInteractiveNeverStarved(t *testing.T) {
	res, err := Run(Config{Seed: 21, Nodes: 4, Jobs: 8000, Traffic: TrafficMixed,
		ArrivalRate: 900}) // ~1.29x batch capacity: a real backlog
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Fatalf("lost %d jobs", res.Lost)
	}
	if res.QueueJumps == 0 {
		t.Fatal("overloaded mixed traffic produced zero queue-jumps")
	}
	// One cold batch service is 8ms +20% jitter; give double for pileup.
	if res.InteractiveMaxWaitMS > 20 {
		t.Fatalf("interactive max wait %.2f ms — starved behind batch", res.InteractiveMaxWaitMS)
	}
	if res.BatchP99WaitMS < res.InteractiveP99WaitMS {
		t.Fatalf("batch p99 wait %.2f ms below interactive %.2f ms under overload",
			res.BatchP99WaitMS, res.InteractiveP99WaitMS)
	}
}

// Slow nodes only stretch the schedule; they must not change results.
func TestSlowNodeChangesScheduleNotReports(t *testing.T) {
	base := Config{Seed: 13, Nodes: 4, Jobs: 3000}
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	slow := base
	slow.SlowFactor = map[int]float64{1: 4}
	b, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lost != 0 {
		t.Fatalf("slow node lost %d jobs", b.Lost)
	}
	if a.ScheduleDigest == b.ScheduleDigest {
		t.Fatal("4x slower node did not change the schedule")
	}
	if a.ReportDigest != b.ReportDigest {
		t.Fatal("slow node changed job reports")
	}
}

func TestConfigRejectsKillingWholeFleet(t *testing.T) {
	_, err := Run(Config{Nodes: 2, Jobs: 100,
		Crashes: []Crash{{Node: 0, AtMS: 1}, {Node: 1, AtMS: 2}}})
	if err == nil {
		t.Fatal("killing every node should be rejected, not simulated")
	}
}
