package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// defaultReplicas is the number of virtual points each node contributes
// to the ring. 128 keeps the per-node load imbalance under a few percent
// for realistic fleet sizes while the full point list stays tiny.
const defaultReplicas = 128

// Ring is a consistent-hash ring over node IDs, keyed by the module
// cache key (server.CacheKey). A key's primary node is stable under
// membership churn: adding or removing one node remaps only ~1/N of the
// keyspace, so the session caches on the surviving nodes stay warm —
// which is the whole point of routing by cache key.
//
// Ring is not safe for concurrent use; the Coordinator serializes
// access under its own lock.
type Ring struct {
	replicas int
	nodes    map[string]struct{}
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with the given virtual-node count per
// member (0 = default 128).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]struct{})}
}

// ringHash positions a string on the ring. SHA-256 keeps placement
// uniform and — critically for the deterministic simulator — identical
// across processes, platforms and Go versions.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		r.points = append(r.points, ringPoint{
			hash: ringHash(node + "\x00" + string(buf[:])),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node // total order on collisions
	})
}

// Remove drops a node and all its virtual points (idempotent).
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len is the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Has reports membership.
func (r *Ring) Has(node string) bool {
	_, ok := r.nodes[node]
	return ok
}

// Nodes lists members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Primary returns the node owning key ("" on an empty ring): the first
// virtual point at or clockwise of the key's position.
func (r *Ring) Primary(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Sequence returns every distinct node in ring order starting from the
// key's primary. This is the failover order: a job excluded from its
// primary moves to the next successor, never back.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.nodes))
	seen := make(map[string]struct{}, len(r.nodes))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
