package fleet

import (
	"net/http"
	"time"
)

// Backoff bounds for RetryDelay's fallback schedule.
const (
	retryBase = 250 * time.Millisecond
	retryCap  = 5 * time.Second
)

// RetryDelay returns how long a client should wait before retrying a
// backpressured request. Servers that reject with 429/503 say when to
// come back via the Retry-After header (both barracudad and the
// coordinator send it); honoring it matters because the hint is sized
// to the server's actual recovery — a token-bucket refill or one queue
// slot draining — where blind exponential backoff either hammers a
// saturated server or oversleeps an almost-free one. When the header is
// absent or unparseable, the fallback is bounded exponential backoff on
// the attempt count (250ms, 500ms, 1s, ... capped at 5s).
//
// resp may be nil (transport error: no response at all); attempt counts
// from 0.
func RetryDelay(resp *http.Response, attempt int) time.Duration {
	if resp != nil {
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
			return d
		}
	}
	if attempt < 0 {
		attempt = 0
	}
	d := retryBase << uint(attempt)
	if d > retryCap || d <= 0 { // <=0 guards shift overflow
		d = retryCap
	}
	return d
}

// parseRetryAfter handles both RFC 9110 forms: delay-seconds and
// HTTP-date.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := time.ParseDuration(v + "s"); err == nil && secs >= 0 {
		return secs, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// RetryableStatus reports whether an HTTP status is worth retrying at
// all (the backpressure and transient-failure family).
func RetryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}
