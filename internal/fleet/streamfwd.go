package fleet

import (
	"errors"
	"time"

	"barracuda/internal/server"
	"barracuda/internal/wire"
)

// Stream forwarding: the coordinator pushes assignments to workers over
// the binary streaming protocol (internal/wire) instead of JSON POST +
// long-poll. Two things get cheaper:
//
//   - Bytes on the wire. The module travels once as framed chunks and
//     is declared by content hash on every later forward, so a retry —
//     or any job ring-routed to a worker that already holds the module
//     in its source store — skips the PTX transfer entirely and
//     re-streams from the worker's cache. The JSON path re-sends the
//     full base64-free but still verbatim source on every attempt.
//
//   - Latency. The terminal summary arrives as a pushed frame the
//     moment the job finishes, instead of at the next long-poll
//     boundary.
//
// The JSON path remains both the A/B baseline (Options.JSONForward) and
// the automatic fallback for workers that refuse the upgrade and for
// job shapes only the JSON surface expresses (benchmark modules, repair
// loops).

// streamable reports whether a job can travel the wire protocol at all.
// Bench jobs resolve their module worker-side and repair jobs return a
// RepairReport; neither fits a LaunchSpec, so they ride the JSON path.
func streamable(req server.JobRequest) bool {
	return req.Bench == "" && req.Kind != server.KindRepair &&
		len(req.PTX) <= wire.MaxModule
}

// launchSpec maps the JSON job shape onto the wire launch shape.
func launchSpec(req server.JobRequest) wire.LaunchSpec {
	return wire.LaunchSpec{
		Seq:       1,
		Kernel:    req.Kernel,
		Grid:      req.Grid,
		Block:     req.Block,
		WarpSize:  req.WarpSize,
		TimeoutMS: req.TimeoutMS,
		MaxInstrs: req.MaxInstrs,
		Buffers:   req.Buffers,
		Config: wire.ConfigSpec{
			Queues:            req.Config.Queues,
			QueueCap:          req.Config.QueueCap,
			Granularity:       req.Config.Granularity,
			MaxRaces:          req.Config.MaxRaces,
			ShadowCapBytes:    req.Config.ShadowCapBytes,
			FullVC:            req.Config.FullVC,
			NoPrune:           req.Config.NoPrune,
			StaticPrune:       req.Config.StaticPrune,
			NoSameValueFilter: req.Config.NoSameValueFilter,
			PerCellShadow:     req.Config.PerCellShadow,
			Ownership:         req.Config.Ownership,
			ProducerFilter:    req.Config.ProducerFilter,
		},
	}
}

// wireFailure classifies a mid-stream error the way decodeOrError
// classifies a JSON error body: rejects carry their own machine code,
// everything else (dead connection, protocol violation) is a node
// problem worth retrying elsewhere.
func wireFailure(err error) (retryable bool, code string) {
	var rej *wire.RejectError
	if errors.As(err, &rej) {
		return server.RetryableCode(rej.Reject.Code), rej.Reject.Code
	}
	return true, server.CodeUnavailable
}

// streamForward pushes one assignment over the wire protocol and sees
// it through to a terminal outcome. It returns false only when the
// assignment was not attempted at all — an unstreamable job shape or a
// worker that refused the upgrade — and the caller should forward over
// JSON instead. In every other case the assignment's fate is settled
// here (completed, permanently failed, or requeued for retry) and the
// JSON path must not run.
func (h *HTTPCoordinator) streamForward(a Assignment, pj *proxyJob, node NodeInfo, req server.JobRequest) bool {
	if !streamable(req) {
		return false
	}
	c, err := wire.Dial(node.Addr, "fleet:"+a.Node, 10*time.Second)
	if err != nil {
		if errors.Is(err, wire.ErrUpgradeRefused) {
			return false // worker predates the stream endpoint: use JSON
		}
		retryable, code := wireFailure(err)
		h.failAssignment(a, pj, retryable, "stream to "+a.Node+": "+err.Error(), code)
		return true
	}
	defer c.Close()

	// Hash-declared upload: a worker that already holds the module
	// (earlier attempt, or ring affinity) answers "have" and the source
	// bytes never leave the coordinator.
	if _, _, err := c.UploadModule([]byte(req.PTX)); err != nil {
		retryable, code := wireFailure(err)
		h.failAssignment(a, pj, retryable, "stream upload to "+a.Node+": "+err.Error(), code)
		return true
	}
	if err := c.Launch(launchSpec(req)); err != nil {
		h.failAssignment(a, pj, true, "stream launch to "+a.Node+": "+err.Error(), server.CodeUnavailable)
		return true
	}

	var workerID string
	for {
		ev, err := c.Next()
		if err != nil {
			// The stream died under a live job (worker crash, cut
			// connection): same treatment as a failed long-poll.
			h.failAssignment(a, pj, true, "stream "+a.Node+": "+err.Error(), server.CodeUnavailable)
			return true
		}
		switch ev.Type {
		case wire.FAccept:
			workerID = ev.Accept.JobID
		case wire.FRace:
			// Low-latency preview frames; the summary's race table is
			// authoritative and is what lands in the job result.
		case wire.FReject:
			h.failAssignment(a, pj, server.RetryableCode(ev.Reject.Code),
				"stream "+a.Node+": "+ev.Reject.Msg, ev.Reject.Code)
			return true
		case wire.FSummary:
			sum := ev.Summary
			c.Bye()
			info := server.JobInfoFromSummary(workerID, sum)
			asgs, live := h.core.Complete(a.Node, a.Job.ID, sum.CacheHit)
			if live {
				if sum.Status == server.StatusDone {
					pj.finish(server.StatusDone, "", "", info)
				} else {
					// Failed/timeout on a healthy worker: a property of
					// the job, not the node — no re-route.
					pj.finish(server.StatusFailed, sum.Error, "", info)
				}
			}
			h.perform(asgs)
			return true
		}
	}
}
