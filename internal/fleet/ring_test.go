package fleet

import (
	"fmt"
	"testing"
)

func ringWith(nodes ...string) *Ring {
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

func TestRingDeterministicPlacement(t *testing.T) {
	a := ringWith("node-00", "node-01", "node-02", "node-03")
	// Same members added in a different order must produce the same map.
	b := ringWith("node-03", "node-01", "node-00", "node-02")
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%05d", i)
		if pa, pb := a.Primary(key), b.Primary(key); pa != pb {
			t.Fatalf("key %s: primary %s vs %s under different insertion order", key, pa, pb)
		}
	}
}

func TestRingSequenceDistinctAndStartsAtPrimary(t *testing.T) {
	r := ringWith("a", "b", "c", "d", "e")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.Sequence(key)
		if len(seq) != 5 {
			t.Fatalf("key %s: sequence has %d nodes, want 5", key, len(seq))
		}
		if seq[0] != r.Primary(key) {
			t.Fatalf("key %s: sequence starts at %s, primary is %s", key, seq[0], r.Primary(key))
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("key %s: duplicate node %s in sequence %v", key, n, seq)
			}
			seen[n] = true
		}
	}
}

func TestRingBalance(t *testing.T) {
	const nodes, keys = 8, 10000
	r := NewRing(0)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("node-%02d", i))
	}
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Primary(fmt.Sprintf("key-%05d", i))]++
	}
	want := keys / nodes
	for n, c := range counts {
		// 128 virtual points keep imbalance well under 2x.
		if c < want/2 || c > want*2 {
			t.Errorf("node %s owns %d of %d keys (expected ~%d)", n, c, keys, want)
		}
	}
}

// The consistent-hashing contract: membership change of one node remaps
// only about 1/N of the keyspace, and every remap after a removal moves
// keys OFF the removed node, never between survivors.
func TestRingMinimalRemap(t *testing.T) {
	const keys = 10000
	base := ringWith("n0", "n1", "n2", "n3")
	before := make([]string, keys)
	for i := range before {
		before[i] = base.Primary(fmt.Sprintf("key-%05d", i))
	}

	t.Run("add", func(t *testing.T) {
		r := ringWith("n0", "n1", "n2", "n3")
		r.Add("n4")
		moved := 0
		for i := 0; i < keys; i++ {
			after := r.Primary(fmt.Sprintf("key-%05d", i))
			if after != before[i] {
				moved++
				if after != "n4" {
					t.Fatalf("key-%05d moved %s→%s, not to the new node", i, before[i], after)
				}
			}
		}
		// Ideal is keys/5 = 2000; allow generous statistical slack.
		if moved < keys/10 || moved > keys*3/10 {
			t.Errorf("adding 1 of 5 nodes remapped %d/%d keys, want ~%d", moved, keys, keys/5)
		}
	})

	t.Run("remove", func(t *testing.T) {
		r := ringWith("n0", "n1", "n2", "n3")
		r.Remove("n3")
		moved := 0
		for i := 0; i < keys; i++ {
			after := r.Primary(fmt.Sprintf("key-%05d", i))
			if after != before[i] {
				moved++
				if before[i] != "n3" {
					t.Fatalf("key-%05d moved %s→%s although its owner survived", i, before[i], after)
				}
			}
		}
		// n3 owned ~keys/4; every one of its keys (and only those) moved.
		if moved < keys/8 || moved > keys*3/8 {
			t.Errorf("removing 1 of 4 nodes remapped %d/%d keys, want ~%d", moved, keys, keys/4)
		}
	})
}

func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(0)
	if p := r.Primary("k"); p != "" {
		t.Fatalf("empty ring primary = %q, want empty", p)
	}
	if s := r.Sequence("k"); s != nil {
		t.Fatalf("empty ring sequence = %v, want nil", s)
	}
	r.Add("a")
	r.Add("a")
	if got := len(r.points); got != defaultReplicas {
		t.Fatalf("double Add left %d points, want %d", got, defaultReplicas)
	}
	r.Remove("b") // not a member: no-op
	r.Remove("a")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("ring not empty after removal: %d nodes, %d points", r.Len(), len(r.points))
	}
}
