package fleet

import (
	"testing"
	"time"

	"barracuda/internal/server"
)

func TestRegistryStateMachine(t *testing.T) {
	t0 := time.Unix(1000, 0)
	g := NewRegistry(5*time.Second, 15*time.Second)
	g.Join("w1", "http://w1", 2, t0)

	if !g.Alive("w1") {
		t.Fatal("freshly joined node not alive")
	}

	// Under the suspect threshold: still alive.
	if died := g.Tick(t0.Add(4 * time.Second)); len(died) != 0 {
		t.Fatalf("died at 4s: %v", died)
	}
	if !g.Alive("w1") {
		t.Fatal("node suspect before SuspectAfter elapsed")
	}

	// Past suspect, before dead: suspect (no new work) but registered.
	if died := g.Tick(t0.Add(6 * time.Second)); len(died) != 0 {
		t.Fatalf("died at 6s: %v", died)
	}
	if g.Alive("w1") {
		t.Fatal("silent node still alive after SuspectAfter")
	}
	if n, ok := g.Get("w1"); !ok || n.State != StateSuspect {
		t.Fatalf("state = %v, ok = %v, want suspect", n.State, ok)
	}

	// A heartbeat revives a suspect.
	if !g.Heartbeat("w1", server.HeartbeatStats{QueueDepth: 3}, t0.Add(7*time.Second)) {
		t.Fatal("heartbeat for registered node returned unknown")
	}
	if !g.Alive("w1") {
		t.Fatal("heartbeat did not revive suspect node")
	}
	if n, _ := g.Get("w1"); n.Stats.QueueDepth != 3 {
		t.Fatalf("stats not recorded: %+v", n.Stats)
	}

	// Silence past the dead threshold: removed, heartbeat now unknown.
	died := g.Tick(t0.Add(7*time.Second + 16*time.Second))
	if len(died) != 1 || died[0] != "w1" {
		t.Fatalf("died = %v, want [w1]", died)
	}
	if _, ok := g.Get("w1"); ok {
		t.Fatal("dead node still registered")
	}
	if g.Heartbeat("w1", server.HeartbeatStats{}, t0.Add(24*time.Second)) {
		t.Fatal("heartbeat for dead node should report unknown (worker must re-join)")
	}

	// Re-join resurrects it cold.
	g.Join("w1", "http://w1", 2, t0.Add(25*time.Second))
	if !g.Alive("w1") {
		t.Fatal("re-joined node not alive")
	}
}

func TestRegistryTickDeterministicOrder(t *testing.T) {
	t0 := time.Unix(0, 0)
	g := NewRegistry(time.Second, 2*time.Second)
	for _, id := range []string{"c", "a", "b"} {
		g.Join(id, "sim://"+id, 1, t0)
	}
	died := g.Tick(t0.Add(time.Minute))
	if len(died) != 3 || died[0] != "a" || died[1] != "b" || died[2] != "c" {
		t.Fatalf("died = %v, want sorted [a b c]", died)
	}
}

func TestRegistryCapacityFloorAndLeave(t *testing.T) {
	t0 := time.Unix(0, 0)
	g := NewRegistry(0, 0) // defaults
	g.Join("w", "addr", 0, t0)
	if n, _ := g.Get("w"); n.Capacity != 1 {
		t.Fatalf("capacity %d, want floor of 1", n.Capacity)
	}
	g.Leave("w")
	if _, ok := g.Get("w"); ok {
		t.Fatal("node registered after Leave")
	}
}
