package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"barracuda/internal/server"
)

// WorkerLink is the worker side of the fleet protocol: it registers an
// otherwise-unmodified barracudad with a coordinator (-join) and keeps
// it registered with periodic heartbeats carrying the scheduler's queue
// depth and cache figures. If the coordinator forgets the node (its
// restart, or a dead-declaration after missed beats), the next beat's
// 404 triggers an automatic re-join. Job traffic itself arrives through
// the daemon's normal /jobs API — the coordinator is just another
// client with routing smarts.
type WorkerLink struct {
	coord    string // coordinator base URL
	id       string
	addr     string // this worker's advertised base URL
	sched    *server.Scheduler
	interval time.Duration
	client   *http.Client
	logf     func(format string, args ...any)

	quit chan struct{}
	done chan struct{}
	stop sync.Once // Close and Drain both stop the loop; only one closes quit

	// holdUntil pauses join/beat attempts while a backpressured
	// coordinator's Retry-After (or the bounded-backoff fallback) runs
	// out; attempts counts consecutive failures for the fallback curve.
	holdUntil time.Time
	attempts  int
}

// StartWorkerLink registers with the coordinator and starts the
// heartbeat loop. Registration failures are retried from the loop, so
// a worker can come up before its coordinator. logf may be nil
// (defaults to log.Printf).
func StartWorkerLink(coordURL, id, advertiseAddr string, sched *server.Scheduler, interval time.Duration, logf func(string, ...any)) *WorkerLink {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if logf == nil {
		logf = log.Printf
	}
	l := &WorkerLink{
		coord:    coordURL,
		id:       id,
		addr:     advertiseAddr,
		sched:    sched,
		interval: interval,
		client:   &http.Client{Timeout: 10 * time.Second},
		logf:     logf,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go l.loop()
	return l
}

// Close stops the loop and sends a best-effort leave so the coordinator
// re-routes immediately instead of waiting out the dead timer. In-flight
// jobs forwarded to this worker are requeued; use Drain for a clean
// departure that lets them finish.
func (l *WorkerLink) Close() {
	l.stopLoop()
	body, _ := json.Marshal(LeaveRequest{ID: l.id})
	resp, err := l.client.Post(l.coord+"/fleet/leave", "application/json", bytes.NewReader(body))
	if err == nil {
		resp.Body.Close()
	}
}

func (l *WorkerLink) stopLoop() {
	l.stop.Do(func() { close(l.quit) })
	<-l.done
}

// Drain departs gracefully: the heartbeat loop stops (so a beat can't
// race the removal and re-join), then /fleet/drain is polled until the
// coordinator reports every job this node was running as finished and
// removes it. Each poll refreshes the node's beat server-side, so the
// dead timer never fires during a slow drain. On timeout (or if the
// coordinator never accepted the drain) it falls back to a plain leave,
// which requeues whatever is still in flight. Returns true on a clean
// drain.
func (l *WorkerLink) Drain(timeout time.Duration) bool {
	l.stopLoop()
	interval := l.interval
	if interval > time.Second {
		interval = time.Second
	}
	deadline := time.Now().Add(timeout)
	accepted := false
	for time.Now().Before(deadline) {
		body, _ := json.Marshal(DrainRequest{ID: l.id})
		resp, err := l.client.Post(l.coord+"/fleet/drain", "application/json", bytes.NewReader(body))
		if err != nil {
			l.logf("fleet: drain: %v (will retry)", err)
			time.Sleep(interval)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			if accepted {
				// The coordinator finished the drain between polls.
				l.logf("fleet: drained %s cleanly", l.id)
				return true
			}
			// Unknown node: nothing to drain, nothing to requeue.
			l.logf("fleet: drain: coordinator does not know %s", l.id)
			return true
		}
		var dr DrainResponse
		derr := json.NewDecoder(resp.Body).Decode(&dr)
		resp.Body.Close()
		if resp.StatusCode/100 != 2 || derr != nil {
			l.logf("fleet: drain: %s (will retry)", resp.Status)
			time.Sleep(interval)
			continue
		}
		accepted = true
		if dr.Removed {
			l.logf("fleet: drained %s cleanly", l.id)
			return true
		}
		l.logf("fleet: draining %s: %d job(s) in flight", l.id, dr.InFlight)
		time.Sleep(interval)
	}
	l.logf("fleet: drain of %s timed out, leaving (in-flight jobs requeue)", l.id)
	body, _ := json.Marshal(LeaveRequest{ID: l.id})
	if resp, err := l.client.Post(l.coord+"/fleet/leave", "application/json", bytes.NewReader(body)); err == nil {
		resp.Body.Close()
	}
	return false
}

func (l *WorkerLink) loop() {
	defer close(l.done)
	joined := l.join()
	t := time.NewTicker(l.interval)
	defer t.Stop()
	for {
		select {
		case <-l.quit:
			return
		case now := <-t.C:
			if now.Before(l.holdUntil) {
				continue // coordinator said Retry-After: respect it
			}
			if !joined {
				joined = l.join()
				continue
			}
			joined = l.beat()
		}
	}
}

// hold records a backpressure response: the link stays silent for the
// server's Retry-After (or the bounded exponential fallback).
func (l *WorkerLink) hold(resp *http.Response) {
	d := RetryDelay(resp, l.attempts)
	l.attempts++
	l.holdUntil = time.Now().Add(d)
	l.logf("fleet: coordinator backpressure (%s), holding %v", resp.Status, d)
}

func (l *WorkerLink) join() bool {
	body, _ := json.Marshal(JoinRequest{
		ID: l.id, Addr: l.addr, Capacity: l.sched.Options().Workers,
	})
	resp, err := l.client.Post(l.coord+"/fleet/join", "application/json", bytes.NewReader(body))
	if err != nil {
		l.logf("fleet: join %s: %v (will retry)", l.coord, err)
		return false
	}
	defer resp.Body.Close()
	if RetryableStatus(resp.StatusCode) {
		l.hold(resp)
		return false
	}
	if resp.StatusCode/100 != 2 {
		l.logf("fleet: join %s: %s (will retry)", l.coord, resp.Status)
		return false
	}
	l.attempts = 0
	l.logf("fleet: joined coordinator %s as %s (%s)", l.coord, l.id, l.addr)
	return true
}

// beat sends one heartbeat; false demotes the link to re-join mode.
func (l *WorkerLink) beat() bool {
	body, _ := json.Marshal(HeartbeatRequest{ID: l.id, Stats: l.sched.HeartbeatStats()})
	resp, err := l.client.Post(l.coord+"/fleet/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		l.logf("fleet: heartbeat: %v", err)
		return true // transient: keep beating, the dead timer is the judge
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		l.logf("fleet: coordinator forgot %s, re-joining", l.id)
		return false
	}
	if RetryableStatus(resp.StatusCode) {
		l.hold(resp)
		return true // stay joined; just back off
	}
	if resp.StatusCode/100 != 2 {
		l.logf("fleet: heartbeat: %s", resp.Status)
		return true
	}
	l.attempts = 0
	return true
}

// DefaultNodeID derives a stable-enough worker identity from the
// advertised address when the operator doesn't name one.
func DefaultNodeID(advertiseAddr string) string {
	return fmt.Sprintf("worker-%x", ringHash(advertiseAddr)&0xffffff)
}
