package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"barracuda/internal/server"
)

// inFlightOn counts jobs currently assigned to one node.
func inFlightOn(c *Coordinator, node string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight[node])
}

// keysForPrimary picks n distinct ring keys whose primary is the given
// node, so tests can aim jobs at a specific worker deterministically.
func keysForPrimary(c *Coordinator, node string, n int) []string {
	var keys []string
	for i := 0; len(keys) < n && i < 10_000; i++ {
		k := fmt.Sprintf("drainkey-%d", i)
		if c.ring.Primary(k) == node {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestDrainCompletesInFlightWithoutRequeue is the clean-drain contract:
// a draining node gets no new work, its in-flight jobs run to
// completion on it (never requeued), heartbeats don't revive it, and
// the registry removes it exactly when the last job reports back.
func TestDrainCompletesInFlightWithoutRequeue(t *testing.T) {
	f := newFakeFleet(t, Options{}, 2, 4)
	target := "node-00"
	other := "node-01"

	keys := keysForPrimary(f.c, target, 2)
	if len(keys) < 2 {
		t.Fatalf("could not find 2 keys with primary %s", target)
	}
	f.submit("t-0", keys[0], server.ClassBatch)
	f.submit("t-1", keys[1], server.ClassBatch)
	for _, id := range []string{"t-0", "t-1"} {
		if f.onjob[id] != target {
			t.Fatalf("job %s routed to %s, want %s", id, f.onjob[id], target)
		}
	}

	asgs, inflight, known := f.c.Drain(target, f.now)
	f.record(asgs)
	if !known || inflight != 2 {
		t.Fatalf("Drain = (inflight=%d, known=%v), want (2, true)", inflight, known)
	}
	info, ok := f.c.Node(target)
	if !ok || info.State != StateDraining {
		t.Fatalf("node state after drain = %v (known=%v), want draining", info.State, ok)
	}

	// A heartbeat keeps the node known but must not revive it to Alive.
	f.now = f.now.Add(time.Second)
	hbKnown, hbAsgs := f.c.Heartbeat(target, server.HeartbeatStats{}, f.now)
	f.record(hbAsgs)
	if !hbKnown {
		t.Fatal("heartbeat during drain reported the node unknown")
	}
	if info, _ := f.c.Node(target); info.State != StateDraining {
		t.Fatalf("heartbeat revived draining node to %v", info.State)
	}

	// New work whose ring primary was the draining node re-routes away.
	for i, k := range keysForPrimary(f.c, target, 2) {
		id := fmt.Sprintf("re-%d", i)
		f.submit(id, k, server.ClassBatch)
		if f.onjob[id] != other {
			t.Fatalf("job %s routed to %s during drain, want %s", id, f.onjob[id], other)
		}
	}

	// Completions finish the drain one job at a time.
	f.complete("t-0")
	if _, ok := f.c.Node(target); !ok {
		t.Fatal("node removed with a job still in flight")
	}
	f.complete("t-1")
	if _, ok := f.c.Node(target); ok {
		t.Fatal("node still registered after its last in-flight job completed")
	}

	st := f.c.Stats()
	if st.Requeued != 0 {
		t.Errorf("clean drain requeued %d job(s), want 0", st.Requeued)
	}
	if st.Drained != 1 {
		t.Errorf("Drained = %d, want 1", st.Drained)
	}
}

// TestDrainIdleNodeRemovesImmediately: nothing in flight means the
// drain finishes in the same call.
func TestDrainIdleNodeRemovesImmediately(t *testing.T) {
	f := newFakeFleet(t, Options{}, 2, 2)
	asgs, inflight, known := f.c.Drain("node-00", f.now)
	f.record(asgs)
	if !known || inflight != 0 {
		t.Fatalf("Drain = (inflight=%d, known=%v), want (0, true)", inflight, known)
	}
	if _, ok := f.c.Node("node-00"); ok {
		t.Fatal("idle node still registered after drain")
	}
	if _, _, known := f.c.Drain("node-00", f.now); known {
		t.Fatal("second drain of a removed node reported it known")
	}
	if st := f.c.Stats(); st.Requeued != 0 || st.Drained != 1 {
		t.Errorf("stats = %+v, want Requeued=0 Drained=1", st)
	}
}

// TestDrainSurvivesTickButNotSilence: the suspect timer must not demote
// a draining node (its beat may be slow while it finishes work), but a
// node that goes fully silent past the dead threshold mid-drain is a
// crash — its jobs requeue like any other death.
func TestDrainSurvivesTickButNotSilence(t *testing.T) {
	f := newFakeFleet(t, Options{}, 2, 4)
	target := "node-00"
	keys := keysForPrimary(f.c, target, 1)
	f.submit("t-0", keys[0], server.ClassBatch)
	asgs, _, _ := f.c.Drain(target, f.now)
	f.record(asgs)

	beat01 := func() {
		_, asgs := f.c.Heartbeat("node-01", server.HeartbeatStats{}, f.now)
		f.record(asgs)
	}

	// Past the suspect threshold: still draining, not suspect.
	f.now = f.now.Add(6 * time.Second)
	beat01()
	f.record(f.c.Tick(f.now))
	if info, ok := f.c.Node(target); !ok || info.State != StateDraining {
		t.Fatalf("state past suspect threshold = %v (known=%v), want draining", info.State, ok)
	}

	// Past the dead threshold with no beats: the node dies and its
	// in-flight job goes back to the queue (node-01 keeps beating).
	f.now = f.now.Add(20 * time.Second)
	beat01()
	f.record(f.c.Tick(f.now))
	if _, ok := f.c.Node(target); ok {
		t.Fatal("silent draining node not declared dead")
	}
	if st := f.c.Stats(); st.Requeued != 1 {
		t.Errorf("Requeued = %d after mid-drain death, want 1", st.Requeued)
	}
	if node := f.onjob["t-0"]; node != "node-01" {
		t.Errorf("job t-0 on %s after mid-drain death, want node-01", node)
	}
}

// TestWorkerLinkDrainEndToEnd exercises the HTTP surface: a real worker
// with a job in flight drains via SIGTERM's code path (link.Drain), the
// job finishes on that worker, and nothing is requeued.
func TestWorkerLinkDrainEndToEnd(t *testing.T) {
	f := newTestFleet(t, 2)

	// A kernel that spins long enough for the drain to start while the
	// job is still running.
	const spin = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<4>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	shl.b32 %r2, %r1, 2;
	cvt.u64.u32 %rd2, %r2;
	add.u64 %rd3, %rd1, %rd2;
	mov.u32 %r3, 0;
LOOP:
	add.u32 %r3, %r3, 1;
	setp.lt.u32 %p1, %r3, 262144;
	@%p1 bra LOOP;
	st.global.u32 [%rd3], %r3;
	ret;
}`
	code, info, errj := f.submit(server.JobRequest{
		PTX: spin, Kernel: "k", Grid: 1, Block: 32, Buffers: []int{128},
		TimeoutMS: 20_000, MaxInstrs: 1 << 24,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", code, errj.Error)
	}

	// Find the worker the coordinator routed the job to and drain it.
	var running *testWorker
	for _, w := range f.workers {
		if inFlightOn(f.coord.Core(), w.id) > 0 {
			running = w
			break
		}
	}
	if running == nil {
		// The job may have already finished on a fast machine; drain any
		// worker — the invariants below still hold.
		running = f.workers[0]
	}
	if !running.link.Drain(15 * time.Second) {
		t.Fatal("drain did not complete cleanly")
	}

	done := f.wait(info.ID)
	if done.Status != server.StatusDone {
		t.Fatalf("job after drain: %s (%s)", done.Status, done.Error)
	}
	st := f.coord.Core().Stats()
	if st.Requeued != 0 {
		t.Errorf("clean drain requeued %d job(s)", st.Requeued)
	}
	if st.Drained != 1 {
		t.Errorf("Drained = %d, want 1", st.Drained)
	}
	for _, n := range f.coord.Core().Nodes() {
		if n.ID == running.id {
			t.Errorf("drained node %s still registered (state %s)", n.ID, n.State)
		}
	}
	// Drain stopped the link; mark the worker dead for cleanup purposes.
	running.ts.Close()
	running.srv.Close()
	running.ts = nil
}

// TestDrainHTTPUnknownNode: draining a node the coordinator never saw
// is a 404 — the worker treats that as "nothing to do" and exits.
func TestDrainHTTPUnknownNode(t *testing.T) {
	f := newTestFleet(t, 1)
	body := []byte(`{"id":"ghost"}`)
	resp, err := http.Post(f.coordTS.URL+"/fleet/drain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drain of unknown node: %d, want 404", resp.StatusCode)
	}
	var ej server.ErrorJSON
	json.NewDecoder(resp.Body).Decode(&ej)
	if ej.Code != server.CodeNotFound {
		t.Errorf("error code = %q, want %q", ej.Code, server.CodeNotFound)
	}
}
