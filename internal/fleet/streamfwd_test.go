package fleet

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"barracuda/internal/server"
	"barracuda/internal/wire"
)

func TestStreamForwardEndToEnd(t *testing.T) {
	f := newTestFleet(t, 2)
	code, info, errj := f.submit(racyJob())
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %+v", code, errj)
	}
	done := f.wait(info.ID)
	if done.Status != server.StatusDone {
		t.Fatalf("job: %+v", done)
	}
	if done.Worker == nil || done.Worker.Result == nil || done.Worker.Result.RaceCount == 0 {
		t.Fatalf("stream-forwarded result missing races: %+v", done.Worker)
	}
	if n := f.coord.streamFwds.Load(); n == 0 {
		t.Fatal("job completed without a stream forward")
	}
	if n := f.coord.jsonFwds.Load(); n != 0 {
		t.Fatalf("streamable job fell back to JSON %d times", n)
	}
}

// TestStreamForwardWarmRepeat: a second submission of the same module
// ring-routes to the same worker, which answers the hash declaration
// with "have" — the PTX bytes travel once across both jobs.
func TestStreamForwardWarmRepeat(t *testing.T) {
	f := newTestFleet(t, 2)
	for i := 0; i < 2; i++ {
		code, info, errj := f.submit(racyJob())
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %+v", i, code, errj)
		}
		if done := f.wait(info.ID); done.Status != server.StatusDone {
			t.Fatalf("job %d: %+v", i, done)
		}
	}
	var hits, misses int64
	for _, w := range f.workers {
		st := w.srv.Scheduler().Srcs().Stats()
		hits += st.Hits
		misses += st.Misses
	}
	if hits == 0 {
		t.Fatalf("repeat forward never hit the worker source store (hits=%d misses=%d)", hits, misses)
	}
}

// TestJSONForwardBaseline pins the A/B switch: with JSONForward set the
// coordinator never opens a stream.
func TestJSONForwardBaseline(t *testing.T) {
	f := &testFleet{t: t}
	f.coord = NewHTTPCoordinator(Options{
		SuspectAfter: 400 * time.Millisecond,
		DeadAfter:    1200 * time.Millisecond,
		JSONForward:  true,
	})
	f.coordTS = httptest.NewServer(f.coord.Handler())
	t.Cleanup(func() {
		f.coordTS.Close()
		f.coord.Close()
	})
	f.addWorker("w-json")
	f.waitNodes(1)

	code, info, errj := f.submit(racyJob())
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %+v", code, errj)
	}
	if done := f.wait(info.ID); done.Status != server.StatusDone {
		t.Fatalf("job: %+v", done)
	}
	if n := f.coord.streamFwds.Load(); n != 0 {
		t.Fatalf("JSONForward coordinator opened %d streams", n)
	}
	if n := f.coord.jsonFwds.Load(); n == 0 {
		t.Fatal("no JSON forward recorded")
	}
}

// TestStreamForwardFallbackOldWorker: a worker whose /v1/stream does
// not exist (pre-protocol daemon) still gets jobs — the refused upgrade
// drops that forward to the JSON path.
func TestStreamForwardFallbackOldWorker(t *testing.T) {
	f := &testFleet{t: t}
	f.coord = NewHTTPCoordinator(Options{
		SuspectAfter: 400 * time.Millisecond,
		DeadAfter:    1200 * time.Millisecond,
	})
	f.coordTS = httptest.NewServer(f.coord.Handler())
	t.Cleanup(func() {
		f.coordTS.Close()
		f.coord.Close()
	})

	// Wrap a real worker so the stream endpoint answers like an old
	// daemon (404, no upgrade) while the JSON surface works.
	srv := server.New(server.SchedulerOptions{Workers: 2, QueueCap: 64, CacheEntries: 8})
	t.Cleanup(srv.Close)
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, wire.StreamPath) {
			http.NotFound(w, r)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(old.Close)
	link := StartWorkerLink(f.coordTS.URL, "w-old", old.URL, srv.Scheduler(),
		150*time.Millisecond, func(string, ...any) {})
	t.Cleanup(link.Close)
	f.waitNodes(1)

	code, info, errj := f.submit(racyJob())
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %+v", code, errj)
	}
	done := f.wait(info.ID)
	if done.Status != server.StatusDone {
		t.Fatalf("job: %+v", done)
	}
	if done.Worker == nil || done.Worker.Result == nil || done.Worker.Result.RaceCount == 0 {
		t.Fatalf("fallback result missing races: %+v", done.Worker)
	}
	if n := f.coord.jsonFwds.Load(); n == 0 {
		t.Fatal("refused upgrade did not fall back to JSON")
	}
}

// TestStreamForwardRejectRequeues: a worker that rejects the launch
// with queue_full must not terminally fail the job; the coordinator
// requeues and the job lands on capacity elsewhere.
func TestStreamForwardRejectRequeues(t *testing.T) {
	f := newTestFleet(t, 1)
	// Choke the only worker: one slot, zero queue — concurrent
	// submissions force queue_full rejects that must come back around.
	w := f.workers[0]
	_ = w
	const jobs = 6
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		code, info, errj := f.submit(racyJob())
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %+v", i, code, errj)
		}
		ids = append(ids, info.ID)
	}
	for _, id := range ids {
		if done := f.wait(id); done.Status != server.StatusDone {
			t.Fatalf("job %s: %+v", id, done)
		}
	}
}
