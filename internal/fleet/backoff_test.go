package fleet

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"barracuda/internal/server"
)

func respWith(t *testing.T, header string) *http.Response {
	t.Helper()
	h := http.Header{}
	if header != "" {
		h.Set("Retry-After", header)
	}
	return &http.Response{StatusCode: http.StatusTooManyRequests, Header: h}
}

func TestRetryDelayHonorsHeader(t *testing.T) {
	if d := RetryDelay(respWith(t, "3"), 0); d != 3*time.Second {
		t.Fatalf("Retry-After: 3 → %v, want 3s", d)
	}
	// HTTP-date form.
	date := time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)
	if d := RetryDelay(respWith(t, date), 0); d <= 0 || d > 2*time.Second {
		t.Fatalf("Retry-After date → %v, want (0, 2s]", d)
	}
	// A date in the past means "retry now", not a negative sleep.
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := RetryDelay(respWith(t, past), 0); d != 0 {
		t.Fatalf("past Retry-After date → %v, want 0", d)
	}
}

func TestRetryDelayFallback(t *testing.T) {
	// No header (and no response at all): bounded exponential.
	want := []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, time.Second, 2 * time.Second, 4 * time.Second, 5 * time.Second, 5 * time.Second}
	for attempt, w := range want {
		if d := RetryDelay(nil, attempt); d != w {
			t.Fatalf("attempt %d → %v, want %v", attempt, d, w)
		}
	}
	if d := RetryDelay(respWith(t, "junk-value"), 1); d != 500*time.Millisecond {
		t.Fatalf("unparseable header falls back: got %v", d)
	}
	// Shift-overflow guard on absurd attempt counts.
	if d := RetryDelay(nil, 63); d != retryCap {
		t.Fatalf("attempt 63 → %v, want cap %v", d, retryCap)
	}
}

// TestWorkerLinkHonorsRetryAfter drives a WorkerLink against a stub
// coordinator that backpressures the join with a Retry-After and
// asserts the link goes quiet for the advertised window instead of
// hammering on every tick.
func TestWorkerLinkHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var released atomic.Bool
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/fleet/join" {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		calls.Add(1)
		if !released.Load() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"starting up","code":"unavailable"}`))
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer stub.Close()

	sched := server.NewScheduler(server.SchedulerOptions{Workers: 1})
	defer sched.Stop()
	link := StartWorkerLink(stub.URL, "w1", "http://127.0.0.1:0", sched, 20*time.Millisecond, t.Logf)
	defer link.Close()

	// Within the 1s Retry-After window a 20ms ticker would have retried
	// ~20 times; an honoring link makes exactly the one initial attempt.
	time.Sleep(500 * time.Millisecond)
	if n := calls.Load(); n != 1 {
		t.Fatalf("join attempts during hold window = %d, want 1", n)
	}
	released.Store(true)
	// After the window ends the link must come back and succeed.
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("link never retried after the Retry-After window")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWorkerLinkBeatBackoff: a 429 on heartbeat holds the link without
// demoting it to re-join.
func TestWorkerLinkBeatBackoff(t *testing.T) {
	var joins, beats atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/fleet/join":
			joins.Add(1)
			w.Write([]byte(`{"status":"ok"}`))
		case "/fleet/heartbeat":
			beats.Add(1)
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"busy","code":"queue_full"}`))
		default:
			w.Write([]byte(`{"status":"ok"}`))
		}
	}))
	defer stub.Close()

	sched := server.NewScheduler(server.SchedulerOptions{Workers: 1})
	defer sched.Stop()
	link := StartWorkerLink(stub.URL, "w2", "http://127.0.0.1:0", sched, 20*time.Millisecond, t.Logf)
	defer link.Close()

	time.Sleep(600 * time.Millisecond)
	if j := joins.Load(); j != 1 {
		t.Fatalf("backpressured heartbeat caused %d joins, want 1 (no demotion)", j)
	}
	if b := beats.Load(); b != 1 {
		t.Fatalf("heartbeats during hold window = %d, want 1", b)
	}
}
