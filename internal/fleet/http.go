package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"barracuda/internal/bench"
	"barracuda/internal/server"
)

// Wire types of the fleet control API.

// JoinRequest registers a worker with the coordinator.
type JoinRequest struct {
	// ID is the worker's stable identity (survives re-joins).
	ID string `json:"id"`
	// Addr is the worker's base URL, e.g. "http://10.0.0.5:8321".
	Addr string `json:"addr"`
	// Capacity is the worker's concurrent job slots (its -workers).
	Capacity int `json:"capacity"`
}

// HeartbeatRequest is one worker beat.
type HeartbeatRequest struct {
	ID    string                `json:"id"`
	Stats server.HeartbeatStats `json:"stats"`
}

// LeaveRequest deregisters a worker gracefully.
type LeaveRequest struct {
	ID string `json:"id"`
}

// DrainRequest asks the coordinator to begin (or poll) a graceful
// drain of a worker: no new work, in-flight jobs run to completion.
type DrainRequest struct {
	ID string `json:"id"`
}

// DrainResponse reports drain progress. Removed=true (or a 404 on a
// later poll) means the node is fully drained and deregistered.
type DrainResponse struct {
	InFlight int  `json:"in_flight"`
	Removed  bool `json:"removed"`
}

// NodeJSON is the coordinator's view of one worker.
type NodeJSON struct {
	ID        string                `json:"id"`
	Addr      string                `json:"addr"`
	Capacity  int                   `json:"capacity"`
	State     string                `json:"state"`
	BeatAgeMS float64               `json:"beat_age_ms"`
	Stats     server.HeartbeatStats `json:"stats"`
}

// FleetJobInfo is the coordinator-side job envelope: where the job is,
// how often it was retried, and — once terminal — the worker's own
// JobInfo including the detection result.
type FleetJobInfo struct {
	ID       string          `json:"id"`
	Status   string          `json:"status"`
	Class    string          `json:"class"`
	Node     string          `json:"node,omitempty"`
	Attempts int             `json:"attempts"`
	Error    string          `json:"error,omitempty"`
	Code     string          `json:"code,omitempty"`
	Worker   *server.JobInfo `json:"worker,omitempty"`
}

// FleetMetricsJSON is the /fleet/metrics body.
type FleetMetricsJSON struct {
	UptimeMS          float64    `json:"uptime_ms"`
	Stats             Stats      `json:"stats"`
	QueuedInteractive int        `json:"queued_interactive"`
	QueuedBatch       int        `json:"queued_batch"`
	InFlight          int        `json:"in_flight"`
	StreamForwards    int64      `json:"stream_forwards"`
	JSONForwards      int64      `json:"json_forwards"`
	Nodes             []NodeJSON `json:"nodes"`
}

// HTTPCoordinator is the fleet front-end: it speaks the same job API as
// a single barracudad (POST /jobs, GET /jobs/{id}) so clients point at
// the coordinator unchanged, plus the /fleet/* control surface workers
// register against. Forwarding is plain HTTP against each worker's
// /jobs API; worker failures are classified by the machine-readable
// ErrorJSON code (retryable 429/503 vs permanent 400) and retryable
// ones re-route to the next ring successor with the failed node
// excluded.
type HTTPCoordinator struct {
	core        *Coordinator
	mux         *http.ServeMux
	client      *http.Client
	start       time.Time
	maxJobs     int
	jsonForward bool

	// Forward-path census for the JSON-vs-stream A/B (benchtab -proto).
	streamFwds atomic.Int64
	jsonFwds   atomic.Int64

	mu     sync.Mutex
	jobs   map[string]*proxyJob
	order  []string
	nextID int64

	quit chan struct{}
	wg   sync.WaitGroup
}

type proxyJob struct {
	id string
	fj *Job

	mu      sync.Mutex
	reqCopy server.JobRequest // the original submission, re-sent on each forward; dropped once terminal
	status  string
	node    string
	errMsg  string
	errCode string
	worker  *server.JobInfo
	done    chan struct{}
}

func (p *proxyJob) info() FleetJobInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	return FleetJobInfo{
		ID: p.id, Status: p.status, Class: p.fj.Class, Node: p.node,
		Attempts: p.fj.Attempts(), Error: p.errMsg, Code: p.errCode,
		Worker: p.worker,
	}
}

func (p *proxyJob) finish(status, errMsg, errCode string, worker *server.JobInfo) {
	p.mu.Lock()
	terminal := p.status == server.StatusDone || p.status == server.StatusFailed
	if !terminal {
		p.status = status
		p.errMsg = errMsg
		p.errCode = errCode
		p.worker = worker
		// Terminal jobs are never forwarded again: free the retained
		// request (it carries the full PTX source).
		p.reqCopy = server.JobRequest{}
		close(p.done)
	}
	p.mu.Unlock()
}

func (p *proxyJob) terminal() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.status == server.StatusDone || p.status == server.StatusFailed
}

// NewHTTPCoordinator builds the front-end and starts its health ticker.
func NewHTTPCoordinator(opt Options) *HTTPCoordinator {
	opt = opt.withDefaults()
	h := &HTTPCoordinator{
		core:        NewCoordinator(opt),
		mux:         http.NewServeMux(),
		client:      &http.Client{Timeout: 30 * time.Second},
		start:       time.Now(),
		maxJobs:     opt.MaxJobs,
		jsonForward: opt.JSONForward,
		jobs:        make(map[string]*proxyJob),
		quit:        make(chan struct{}),
	}
	h.mux.HandleFunc("POST /fleet/join", h.handleJoin)
	h.mux.HandleFunc("POST /fleet/heartbeat", h.handleHeartbeat)
	h.mux.HandleFunc("POST /fleet/leave", h.handleLeave)
	h.mux.HandleFunc("POST /fleet/drain", h.handleDrain)
	h.mux.HandleFunc("GET /fleet/nodes", h.handleNodes)
	h.mux.HandleFunc("GET /fleet/metrics", h.handleMetrics)
	h.mux.HandleFunc("POST /jobs", h.handleSubmit)
	h.mux.HandleFunc("GET /jobs", h.handleList)
	h.mux.HandleFunc("GET /jobs/{id}", h.handleJob)
	h.mux.HandleFunc("GET /healthz", h.handleHealthz)

	h.wg.Add(1)
	go h.tickLoop(opt.SuspectAfter / 2)
	return h
}

// Handler returns the HTTP handler.
func (h *HTTPCoordinator) Handler() http.Handler { return h.mux }

// Core exposes the scheduling brain (tests, metrics).
func (h *HTTPCoordinator) Core() *Coordinator { return h.core }

// Close stops the health ticker. In-flight forwards drain on their own.
func (h *HTTPCoordinator) Close() {
	close(h.quit)
	h.wg.Wait()
}

func (h *HTTPCoordinator) tickLoop(every time.Duration) {
	defer h.wg.Done()
	if every < 100*time.Millisecond {
		every = 100 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-h.quit:
			return
		case now := <-t.C:
			h.perform(h.core.Tick(now))
		}
	}
}

// perform launches one forwarding goroutine per assignment.
func (h *HTTPCoordinator) perform(asgs []Assignment) {
	for _, a := range asgs {
		go h.forward(a)
	}
}

// forward pushes one assignment to its worker and sees it through to a
// terminal state, reporting the outcome back to the scheduling core.
func (h *HTTPCoordinator) forward(a Assignment) {
	pj := a.Job.Payload.(*proxyJob)
	node, ok := h.core.Node(a.Node)
	if !ok {
		// Node vanished between dispatch and forward (declared dead):
		// fail retryable so the job re-routes.
		h.failAssignment(a, pj, true, "node "+a.Node+" disappeared", server.CodeUnavailable)
		return
	}
	pj.mu.Lock()
	pj.status = server.StatusRunning
	pj.node = a.Node
	pj.mu.Unlock()

	req := pj.fjRequest()
	if !h.jsonForward && h.streamForward(a, pj, node, req) {
		h.streamFwds.Add(1)
		return
	}
	h.jsonFwds.Add(1)
	body, _ := json.Marshal(req)
	resp, err := h.client.Post(node.Addr+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		h.failAssignment(a, pj, true, "forward to "+a.Node+": "+err.Error(), server.CodeUnavailable)
		return
	}
	var accepted server.JobInfo
	if code, errJSON := decodeOrError(resp, &accepted); errJSON != nil {
		retryable := server.RetryableCode(errJSON.Code) || code >= 500
		h.failAssignment(a, pj, retryable, errJSON.Error, errJSON.Code)
		return
	}

	// Long-poll the worker until the job is terminal.
	for {
		resp, err := h.client.Get(node.Addr + "/jobs/" + accepted.ID + "?wait_ms=2000")
		if err != nil {
			h.failAssignment(a, pj, true, "poll "+a.Node+": "+err.Error(), server.CodeUnavailable)
			return
		}
		var info server.JobInfo
		if _, errJSON := decodeOrError(resp, &info); errJSON != nil {
			// The worker forgot the job (restart): retry elsewhere.
			h.failAssignment(a, pj, true, errJSON.Error, errJSON.Code)
			return
		}
		switch info.Status {
		case server.StatusDone:
			asgs, live := h.core.Complete(a.Node, a.Job.ID, info.CacheHit)
			if live {
				pj.finish(server.StatusDone, "", "", &info)
			}
			h.perform(asgs)
			return
		case server.StatusFailed, server.StatusTimeout:
			// The job itself failed on a healthy worker — a property of
			// the job, not the node. Free the slot without re-routing.
			asgs, live := h.core.Complete(a.Node, a.Job.ID, info.CacheHit)
			if live {
				pj.finish(server.StatusFailed, info.Error, "", &info)
			}
			h.perform(asgs)
			return
		}
	}
}

func (h *HTTPCoordinator) failAssignment(a Assignment, pj *proxyJob, retryable bool, msg, code string) {
	asgs, outcome := h.core.Fail(a.Node, a.Job.ID, retryable)
	switch outcome {
	case FailStale:
		// This attempt was superseded: the node was declared dead while
		// the forward was stuck (a poll can outlive DeadAfter) and the
		// job already requeued. The live attempt owns pj — touching it
		// here would fail a job that is still running, or even done,
		// elsewhere.
	case FailTerminal:
		if code == "" {
			code = server.CodeUnavailable
		}
		pj.finish(server.StatusFailed, msg, code, nil)
	case FailRequeued:
		pj.mu.Lock()
		pj.status = server.StatusQueued
		pj.node = ""
		pj.mu.Unlock()
	}
	h.perform(asgs)
}

// fjRequest returns the original JobRequest for forwarding.
func (p *proxyJob) fjRequest() server.JobRequest {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reqCopy
}

func decodeOrError(resp *http.Response, into any) (int, *server.ErrorJSON) {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e server.ErrorJSON
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			e.Error = resp.Status
		}
		if e.Code == "" {
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				e.Code = server.CodeQueueFull
			case http.StatusNotFound:
				e.Code = server.CodeNotFound
			case http.StatusBadRequest:
				e.Code = server.CodeInvalidArgument
			default:
				e.Code = server.CodeUnavailable
			}
		}
		return resp.StatusCode, &e
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return resp.StatusCode, &server.ErrorJSON{Error: "bad response body: " + err.Error(), Code: server.CodeUnavailable}
	}
	return resp.StatusCode, nil
}

const maxBodyBytes = 16 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, server.ErrorJSON{Error: msg, Code: code})
}

func (h *HTTPCoordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, server.CodeInvalidArgument, "bad request body: "+err.Error())
		return
	}
	if req.ID == "" || req.Addr == "" {
		writeError(w, http.StatusBadRequest, server.CodeInvalidArgument, `join: fields "id" and "addr" are required`)
		return
	}
	h.perform(h.core.Join(req.ID, req.Addr, req.Capacity, time.Now()))
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (h *HTTPCoordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, server.CodeInvalidArgument, "bad request body: "+err.Error())
		return
	}
	known, asgs := h.core.Heartbeat(req.ID, req.Stats, time.Now())
	if !known {
		writeError(w, http.StatusNotFound, server.CodeNotFound, "heartbeat: unknown node "+req.ID+" (re-join)")
		return
	}
	h.perform(asgs)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (h *HTTPCoordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req LeaveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, server.CodeInvalidArgument, "bad request body: "+err.Error())
		return
	}
	h.perform(h.core.Leave(req.ID))
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleDrain starts or polls a graceful drain. The first call marks
// the node draining and reports its in-flight count; the worker polls
// until in_flight reaches zero. Each poll refreshes the node's beat, so
// a draining worker needs no separate heartbeat loop. A 404 means the
// node is unknown — for a poll that follows an accepted drain this is
// the success signal (the coordinator already removed the node).
func (h *HTTPCoordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	var req DrainRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, server.CodeInvalidArgument, "bad request body: "+err.Error())
		return
	}
	asgs, inflight, known := h.core.Drain(req.ID, time.Now())
	h.perform(asgs)
	if !known {
		writeError(w, http.StatusNotFound, server.CodeNotFound, "drain: unknown node "+req.ID)
		return
	}
	writeJSON(w, http.StatusOK, DrainResponse{InFlight: inflight, Removed: inflight == 0})
}

func (h *HTTPCoordinator) handleNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.nodesJSON())
}

func (h *HTTPCoordinator) nodesJSON() []NodeJSON {
	nodes := h.core.Nodes()
	out := make([]NodeJSON, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, NodeJSON{
			ID: n.ID, Addr: n.Addr, Capacity: n.Capacity,
			State:     n.State.String(),
			BeatAgeMS: float64(time.Since(n.LastBeat).Microseconds()) / 1000,
			Stats:     n.Stats,
		})
	}
	return out
}

func (h *HTTPCoordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	qi, qb := h.core.QueueDepths()
	writeJSON(w, http.StatusOK, FleetMetricsJSON{
		UptimeMS:          float64(time.Since(h.start).Microseconds()) / 1000,
		Stats:             h.core.Stats(),
		QueuedInteractive: qi,
		QueuedBatch:       qb,
		InFlight:          h.core.InFlight(),
		StreamForwards:    h.streamFwds.Load(),
		JSONForwards:      h.jsonFwds.Load(),
		Nodes:             h.nodesJSON(),
	})
}

func (h *HTTPCoordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": float64(time.Since(h.start).Microseconds()) / 1000,
		"nodes":     h.core.ring.Len(),
	})
}

func (h *HTTPCoordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req server.JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, server.CodeInvalidArgument, "bad request body: "+err.Error())
		return
	}
	// Shape-validate here so permanent 400s never consume a dispatch;
	// each worker still enforces its own buffer cap.
	if err := req.Validate(0); err != nil {
		writeError(w, http.StatusBadRequest, server.CodeInvalidArgument, err.Error())
		return
	}
	// Repair jobs run many verification launches: always batch-class,
	// so one cannot occupy the interactive fast path.
	if req.Kind == server.KindRepair {
		req.Class = server.ClassBatch
	}
	src := req.PTX
	if req.Bench != "" {
		src = bench.ByName(req.Bench).PTX()
	}
	key := server.CacheKey(src, req.Config.Detector())

	h.mu.Lock()
	h.nextID++
	id := fmt.Sprintf("fjob-%d", h.nextID)
	pj := &proxyJob{id: id, status: server.StatusQueued, done: make(chan struct{}), reqCopy: req}
	fj := &Job{ID: id, Key: key, Class: req.Class, Payload: pj}
	pj.fj = fj
	h.jobs[id] = pj
	h.order = append(h.order, id)
	h.trimJobsLocked()
	h.mu.Unlock()

	asgs, err := h.core.Submit(fj, time.Now())
	if errors.Is(err, ErrNoNodes) {
		h.dropJob(id)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, server.CodeUnavailable, err.Error())
		return
	}
	if err != nil {
		h.dropJob(id)
		writeError(w, http.StatusBadRequest, server.CodeInvalidArgument, err.Error())
		return
	}
	h.perform(asgs)
	writeJSON(w, http.StatusAccepted, pj.info())
}

// dropJob rolls a failed submission back out of the job table. It must
// remove the specific id — a concurrent submit may have appended to
// h.order since we released h.mu, so truncating the tail would orphan
// the other request's job.
func (h *HTTPCoordinator) dropJob(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.jobs, id)
	for i := len(h.order) - 1; i >= 0; i-- {
		if h.order[i] == id {
			h.order = append(h.order[:i], h.order[i+1:]...)
			return
		}
	}
}

// trimJobsLocked forgets the oldest terminal jobs past the retention
// cap, mirroring server.Scheduler's bounded job history so a
// long-running coordinator does not accumulate every job (and its PTX
// payload) forever.
func (h *HTTPCoordinator) trimJobsLocked() {
	for len(h.order) > h.maxJobs {
		id := h.order[0]
		if pj, ok := h.jobs[id]; ok {
			if !pj.terminal() {
				return // oldest still live: keep history until it finishes
			}
			delete(h.jobs, id)
		}
		h.order = h.order[1:]
	}
}

func (h *HTTPCoordinator) handleList(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	out := make([]FleetJobInfo, 0, len(h.order))
	for _, id := range h.order {
		if pj, ok := h.jobs[id]; ok {
			out = append(out, pj.info())
		}
	}
	h.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (h *HTTPCoordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	pj, ok := h.jobs[r.PathValue("id")]
	h.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, server.CodeNotFound, "no such job")
		return
	}
	if ms, _ := strconv.Atoi(r.URL.Query().Get("wait_ms")); ms > 0 {
		select {
		case <-pj.done:
		case <-time.After(time.Duration(ms) * time.Millisecond):
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, pj.info())
}
