package fleet

import (
	"sort"
	"time"

	"barracuda/internal/server"
)

// NodeState is the health state of a registered worker.
//
// The heartbeat state machine:
//
//	Alive ──(no beat for SuspectAfter)──▶ Suspect ──(no beat for DeadAfter)──▶ Dead
//	  ▲                                     │
//	  └───────────(heartbeat)───────────────┘
//
// Suspect nodes keep their in-flight jobs (they may just be slow or
// dropping beats) but receive no new work; Dead nodes are removed from
// the ring and their in-flight jobs are re-routed with exclusion. A
// Dead node that comes back must re-Join and is treated as cold.
type NodeState int

const (
	StateAlive NodeState = iota
	StateSuspect
	StateDead
	// StateDraining: the node asked to leave gracefully. It receives no
	// new work but keeps its in-flight jobs; heartbeats refresh its
	// liveness without reviving it to Alive. The coordinator removes it
	// once its last in-flight job finishes.
	StateDraining
)

func (s NodeState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateDraining:
		return "draining"
	}
	return "unknown"
}

// NodeInfo is the registry's view of one worker.
type NodeInfo struct {
	ID       string
	Addr     string
	Capacity int // concurrent jobs the node can run (its worker count)
	State    NodeState
	Joined   time.Time
	LastBeat time.Time
	Stats    server.HeartbeatStats // latest self-reported load + cache figures
}

// Registry tracks worker membership and health. All methods take the
// current time explicitly so the deterministic simulator can drive the
// exact same code with a virtual clock. Not safe for concurrent use;
// the Coordinator serializes access.
type Registry struct {
	suspectAfter time.Duration
	deadAfter    time.Duration
	nodes        map[string]*NodeInfo
}

// NewRegistry builds a registry with the given health thresholds
// (defaults: suspect after 5s, dead after 15s without a heartbeat).
func NewRegistry(suspectAfter, deadAfter time.Duration) *Registry {
	if suspectAfter <= 0 {
		suspectAfter = 5 * time.Second
	}
	if deadAfter <= suspectAfter {
		deadAfter = 3 * suspectAfter
	}
	return &Registry{
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		nodes:        make(map[string]*NodeInfo),
	}
}

// Join registers (or re-registers) a node as Alive. Re-joining after a
// crash resets the heartbeat clock; the caller decides what to do with
// any state it still attributes to the old incarnation.
func (g *Registry) Join(id, addr string, capacity int, now time.Time) {
	if capacity <= 0 {
		capacity = 1
	}
	g.nodes[id] = &NodeInfo{
		ID: id, Addr: addr, Capacity: capacity,
		State: StateAlive, Joined: now, LastBeat: now,
	}
}

// Leave removes a node outright (graceful shutdown).
func (g *Registry) Leave(id string) {
	delete(g.nodes, id)
}

// Heartbeat records a beat, reviving a Suspect node. It reports false
// for unknown (or already-Dead-and-removed) nodes, which the HTTP layer
// maps to 404 so the worker knows to re-join.
func (g *Registry) Heartbeat(id string, stats server.HeartbeatStats, now time.Time) bool {
	n, ok := g.nodes[id]
	if !ok {
		return false
	}
	n.LastBeat = now
	n.Stats = stats
	if n.State != StateDraining {
		n.State = StateAlive
	}
	return true
}

// Drain marks a node as draining: known but no longer eligible for new
// work, and immune to heartbeat revival. The beat clock is refreshed so
// a drain request itself counts as liveness.
func (g *Registry) Drain(id string, now time.Time) bool {
	n, ok := g.nodes[id]
	if !ok {
		return false
	}
	n.State = StateDraining
	n.LastBeat = now
	return true
}

// Tick applies the timeout transitions and returns the IDs of nodes
// that just died (in sorted order, for deterministic replay). Dead
// nodes are removed from the registry: coming back requires a re-Join.
func (g *Registry) Tick(now time.Time) (died []string) {
	for id, n := range g.nodes {
		silent := now.Sub(n.LastBeat)
		switch {
		case silent >= g.deadAfter:
			died = append(died, id)
		case silent >= g.suspectAfter && n.State != StateDraining:
			n.State = StateSuspect
		}
	}
	sort.Strings(died)
	for _, id := range died {
		delete(g.nodes, id)
	}
	return died
}

// Get returns a copy of one node's info.
func (g *Registry) Get(id string) (NodeInfo, bool) {
	n, ok := g.nodes[id]
	if !ok {
		return NodeInfo{}, false
	}
	return *n, true
}

// Alive reports whether the node is registered and in StateAlive.
func (g *Registry) Alive(id string) bool {
	n, ok := g.nodes[id]
	return ok && n.State == StateAlive
}

// List snapshots all nodes sorted by ID.
func (g *Registry) List() []NodeInfo {
	out := make([]NodeInfo, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
