package fleet

import (
	"testing"

	"barracuda/internal/server"
)

// lostUpdateSrc is the canonical repairable kernel: a plain ld/add/st
// increment the repair loop rewrites to red.global.add.
const lostUpdateSrc = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<6>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	ld.global.u32 %r2, [%rd1];
	add.u32 %r3, %r2, 1;
	st.global.u32 [%rd1], %r3;
	ret;
}`

// TestFleetRunsRepairJobs: a kind=repair job submitted to the
// coordinator is forced onto the batch queue, forwarded to a worker
// like any detection job, and comes back with a verified repair report.
func TestFleetRunsRepairJobs(t *testing.T) {
	f := newTestFleet(t, 2)

	// Even an explicitly interactive submission is demoted: repair work
	// runs many verification launches and must not hold the
	// interactive fast path.
	code, info, errj := f.submit(server.JobRequest{
		PTX:   lostUpdateSrc,
		Kind:  server.KindRepair,
		Class: server.ClassInteractive,
	})
	if code != 202 {
		t.Fatalf("submit: %d (%v)", code, errj)
	}
	if info.Class != server.ClassBatch {
		t.Errorf("class = %q, want repair forced to %q", info.Class, server.ClassBatch)
	}

	done := f.wait(info.ID)
	if done.Status != server.StatusDone {
		t.Fatalf("status = %s (%s)", done.Status, done.Error)
	}
	if done.Worker == nil || done.Worker.Result == nil || done.Worker.Result.Repair == nil {
		t.Fatalf("no repair report in %+v", done.Worker)
	}
	rep := done.Worker.Result.Repair
	if rep.BaselineRaces == 0 {
		t.Error("repair report has no baseline races")
	}
	if rep.Verified == 0 || rep.FinalRaces != 0 {
		t.Errorf("verified = %d, final = %d, want a verified race-free repair", rep.Verified, rep.FinalRaces)
	}

	// The same module again routes to the same warm worker and replays
	// the memoized report.
	code, info2, _ := f.submit(server.JobRequest{PTX: lostUpdateSrc, Kind: server.KindRepair})
	if code != 202 {
		t.Fatalf("resubmit: %d", code)
	}
	done2 := f.wait(info2.ID)
	if done2.Status != server.StatusDone {
		t.Fatalf("warm status = %s (%s)", done2.Status, done2.Error)
	}
	if done2.Node != done.Node {
		t.Errorf("warm repair routed to %s, first ran on %s (cache affinity lost)", done2.Node, done.Node)
	}
	if !done2.Worker.CacheHit {
		t.Error("warm repair job missed the module cache")
	}
	if done2.Worker.Result.Repair.Verified != rep.Verified {
		t.Error("warm repair verdicts differ from cold")
	}

	// Malformed kinds are rejected at the coordinator, consuming no
	// dispatch attempts.
	code, _, errj = f.submit(server.JobRequest{PTX: lostUpdateSrc, Kind: "optimize"})
	if code != 400 || errj.Code != server.CodeInvalidArgument {
		t.Errorf("bad kind: %d %q, want 400 invalid_argument", code, errj.Code)
	}
}
