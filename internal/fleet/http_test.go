package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"barracuda/internal/server"
)

const racySrc = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	st.global.u32 [%rd1], %r1;
	ret;
}`

// testFleet is a coordinator plus N real barracudad workers wired up
// over httptest, with fast heartbeats so failover tests finish quickly.
type testFleet struct {
	t       *testing.T
	coord   *HTTPCoordinator
	coordTS *httptest.Server
	workers []*testWorker
}

type testWorker struct {
	id   string
	srv  *server.Server
	ts   *httptest.Server
	link *WorkerLink
}

func newTestFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{t: t}
	f.coord = NewHTTPCoordinator(Options{
		SuspectAfter: 400 * time.Millisecond,
		DeadAfter:    1200 * time.Millisecond,
	})
	f.coordTS = httptest.NewServer(f.coord.Handler())
	t.Cleanup(func() {
		f.coordTS.Close()
		f.coord.Close()
	})
	for i := 0; i < n; i++ {
		f.addWorker(fmt.Sprintf("w-%02d", i))
	}
	f.waitNodes(n)
	return f
}

func (f *testFleet) addWorker(id string) *testWorker {
	f.t.Helper()
	srv := server.New(server.SchedulerOptions{Workers: 2, QueueCap: 64, CacheEntries: 8})
	ts := httptest.NewServer(srv.Handler())
	w := &testWorker{id: id, srv: srv, ts: ts}
	w.link = StartWorkerLink(f.coordTS.URL, id, ts.URL, srv.Scheduler(),
		150*time.Millisecond, func(string, ...any) {}) // quiet logs
	f.workers = append(f.workers, w)
	f.t.Cleanup(func() {
		if w.ts != nil {
			w.kill()
		}
	})
	return w
}

// kill simulates a crash: the HTTP listener dies and heartbeats stop,
// with no graceful leave.
func (w *testWorker) kill() {
	w.link.stop.Do(func() { close(w.link.quit) })
	<-w.link.done
	w.ts.Close()
	w.srv.Close()
	w.ts = nil
}

func (f *testFleet) waitNodes(n int) {
	f.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(f.coord.Core().Nodes()) == n {
			return
		}
		if time.Now().After(deadline) {
			f.t.Fatalf("fleet never reached %d nodes (have %d)", n, len(f.coord.Core().Nodes()))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (f *testFleet) submit(req server.JobRequest) (int, FleetJobInfo, server.ErrorJSON) {
	f.t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(f.coordTS.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	var info FleetJobInfo
	var errj server.ErrorJSON
	if resp.StatusCode == http.StatusAccepted {
		json.NewDecoder(resp.Body).Decode(&info)
	} else {
		json.NewDecoder(resp.Body).Decode(&errj)
	}
	return resp.StatusCode, info, errj
}

func (f *testFleet) wait(id string) FleetJobInfo {
	f.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(f.coordTS.URL + "/jobs/" + id + "?wait_ms=1000")
		if err != nil {
			f.t.Fatal(err)
		}
		var info FleetJobInfo
		json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if info.Status == server.StatusDone || info.Status == server.StatusFailed {
			return info
		}
		if time.Now().After(deadline) {
			f.t.Fatalf("job %s still %s after 30s", id, info.Status)
		}
	}
}

func racyJob() server.JobRequest {
	return server.JobRequest{PTX: racySrc, Kernel: "k", Grid: 1, Block: 32, Buffers: []int{4}}
}

// End-to-end: submit through the coordinator, run on a real worker,
// repeat submissions route to the same node and hit its module cache.
func TestFleetEndToEndWarmRouting(t *testing.T) {
	f := newTestFleet(t, 3)

	code, info, errj := f.submit(racyJob())
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %+v", code, errj)
	}
	first := f.wait(info.ID)
	if first.Status != server.StatusDone {
		t.Fatalf("job failed: %+v", first)
	}
	if first.Worker == nil || first.Worker.Result == nil || first.Worker.Result.RaceCount == 0 {
		t.Fatalf("no detection result through the fleet: %+v", first.Worker)
	}

	// Same PTX+config → same cache key → same node, warm this time.
	for i := 0; i < 3; i++ {
		_, again, _ := f.submit(racyJob())
		res := f.wait(again.ID)
		if res.Node != first.Node {
			t.Fatalf("repeat %d routed to %s, first ran on %s", i, res.Node, first.Node)
		}
		if res.Worker == nil || !res.Worker.CacheHit {
			t.Fatalf("repeat %d was not a cache hit on %s", i, res.Node)
		}
	}
	if st := f.coord.Core().Stats(); st.WarmHits < 3 {
		t.Fatalf("WarmHits = %d, want >= 3", st.WarmHits)
	}
}

// Failover: kill the worker a job's key routes to; the retry must land
// on a different node and produce the identical race report.
func TestFleetFailoverRetriesElsewhere(t *testing.T) {
	f := newTestFleet(t, 3)

	// Run once to learn the key's primary and capture the ground truth.
	_, info, _ := f.submit(racyJob())
	base := f.wait(info.ID)
	if base.Status != server.StatusDone {
		t.Fatalf("baseline failed: %+v", base)
	}

	var victim *testWorker
	for _, w := range f.workers {
		if w.id == base.Node {
			victim = w
		}
	}
	victim.kill()

	// Submit immediately: the coordinator still believes the dead node is
	// alive, forwards there, gets a connection error, and must re-route.
	_, info2, _ := f.submit(racyJob())
	res := f.wait(info2.ID)
	if res.Status != server.StatusDone {
		t.Fatalf("job did not survive worker death: %+v", res)
	}
	if res.Node == victim.id {
		t.Fatalf("job reportedly completed on the dead node %s", victim.id)
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (forward to dead node, then retry)", res.Attempts)
	}
	// The report must not depend on which node ran the job.
	if a, b := base.Worker.Result, res.Worker.Result; a.RaceCount != b.RaceCount || a.Records != b.Records {
		t.Fatalf("failover changed the report: races %d→%d, records %d→%d",
			a.RaceCount, b.RaceCount, a.Records, b.Records)
	}

	// Eventually the registry declares the victim dead and drops it.
	deadline := time.Now().Add(10 * time.Second)
	for len(f.coord.Core().Nodes()) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("dead worker never removed from the registry")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// A worker the coordinator forgot (dead timer fired while it was
// partitioned) re-joins automatically off the heartbeat 404.
func TestFleetWorkerRejoinsAfterForgotten(t *testing.T) {
	f := newTestFleet(t, 1)
	w := f.workers[0]

	// Forget the node coordinator-side; the worker keeps beating.
	f.coord.Core().Leave(w.id)
	f.waitNodes(1) // re-join happens on the next beat cycle

	code, info, _ := f.submit(racyJob())
	if code != http.StatusAccepted {
		t.Fatalf("submit after re-join: %d", code)
	}
	if res := f.wait(info.ID); res.Status != server.StatusDone {
		t.Fatalf("job after re-join: %+v", res)
	}
}

func TestFleetSubmitValidation(t *testing.T) {
	f := newTestFleet(t, 1)

	code, _, errj := f.submit(server.JobRequest{}) // neither ptx nor bench
	if code != http.StatusBadRequest || errj.Code != server.CodeInvalidArgument {
		t.Fatalf("empty job: %d code %q, want 400 invalid_argument", code, errj.Code)
	}
	req := racyJob()
	req.Class = "premium"
	code, _, errj = f.submit(req)
	if code != http.StatusBadRequest || errj.Code != server.CodeInvalidArgument {
		t.Fatalf("bad class: %d code %q", code, errj.Code)
	}
}

func TestFleetNoNodesUnavailable(t *testing.T) {
	coord := NewHTTPCoordinator(Options{})
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() { ts.Close(); coord.Close() })

	body, _ := json.Marshal(racyJob())
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var errj server.ErrorJSON
	json.NewDecoder(resp.Body).Decode(&errj)
	if errj.Code != server.CodeUnavailable {
		t.Fatalf("code %q, want unavailable", errj.Code)
	}
	if !server.RetryableCode(errj.Code) {
		t.Fatal("no-nodes rejection must be retryable")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// A job that is invalid only at runtime (bad PTX passes shape checks)
// fails permanently without burning retries on other nodes.
func TestFleetBadJobNotRetriedAcrossFleet(t *testing.T) {
	f := newTestFleet(t, 3)
	_, info, _ := f.submit(server.JobRequest{PTX: "this is not ptx"})
	res := f.wait(info.ID)
	if res.Status != server.StatusFailed {
		t.Fatalf("bad PTX job: %+v", res)
	}
	if res.Attempts != 1 {
		t.Fatalf("bad job dispatched %d times, want exactly 1 (job fault, not node fault)", res.Attempts)
	}
}

func TestFleetControlEndpoints(t *testing.T) {
	f := newTestFleet(t, 2)

	resp, err := http.Get(f.coordTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status string  `json:"status"`
		Nodes  float64 `json:"nodes"`
	}
	json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if hz.Status != "ok" || hz.Nodes != 2 {
		t.Fatalf("healthz = %+v", hz)
	}

	resp, err = http.Get(f.coordTS.URL + "/fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m FleetMetricsJSON
	json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if len(m.Nodes) != 2 {
		t.Fatalf("metrics nodes = %d, want 2", len(m.Nodes))
	}
	for _, n := range m.Nodes {
		if n.State != "alive" {
			t.Fatalf("node %s state %q, want alive", n.ID, n.State)
		}
		if n.Capacity != 2 {
			t.Fatalf("node %s capacity %d, want 2 (worker's -workers)", n.ID, n.Capacity)
		}
	}

	// Heartbeats carry the worker's queue/cache stats within a beat or two.
	_, info, _ := f.submit(racyJob())
	f.wait(info.ID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		var total int64
		for _, n := range f.coord.Core().Nodes() {
			total += n.Stats.Completed
		}
		if total >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker heartbeats never reported the completed job")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Regression for the stale-forward hole: a worker hang can outlive
// DeadAfter, so the coordinator evicts the node and re-dispatches the
// job while the old forward is still stuck in its poll. When that
// forward finally errors, failAssignment must recognize the report as
// stale and leave the proxy job alone — finishing it as failed would
// tell the client the job failed even though the retry completes.
func TestStaleFailAssignmentDoesNotFinishJob(t *testing.T) {
	// Huge heartbeat thresholds so the background ticker never evicts.
	h := NewHTTPCoordinator(Options{SuspectAfter: time.Hour, DeadAfter: 2 * time.Hour})
	t.Cleanup(h.Close)
	now := time.Now()
	h.Core().Join("node-a", "http://invalid.test", 1, now)
	h.Core().Join("node-b", "http://invalid.test", 1, now)

	pj := &proxyJob{id: "fjob-x", status: server.StatusQueued, done: make(chan struct{})}
	fj := &Job{ID: "fjob-x", Key: "k", Class: server.ClassBatch, Payload: pj}
	pj.fj = fj
	asgs, err := h.Core().Submit(fj, now)
	if err != nil || len(asgs) != 1 {
		t.Fatalf("submit: asgs=%v err=%v", asgs, err)
	}
	stale := asgs[0]

	// The assigned node dies while the (never-started) forward would be
	// hanging; the job re-routes to the survivor.
	moved := h.Core().Leave(stale.Node)
	if len(moved) != 1 || moved[0].Node == stale.Node {
		t.Fatalf("eviction re-dispatch = %v, want 1 assignment on the other node", moved)
	}

	// The stuck forward finally reports its poll error.
	h.failAssignment(stale, pj, true, "poll "+stale.Node+": timeout", server.CodeUnavailable)

	select {
	case <-pj.done:
		t.Fatalf("stale failure report finished the job: %+v", pj.info())
	default:
	}
	if pj.terminal() {
		t.Fatalf("job terminal after stale report: %+v", pj.info())
	}
	if h.Core().InFlight() != 1 {
		t.Fatalf("in flight = %d, want 1 (live attempt untouched)", h.Core().InFlight())
	}
}

// Rolling back a failed submission must remove that submission's id,
// not whatever happens to be last in the listing order (a concurrent
// submit may have appended since the lock was released).
func TestSubmitRollbackRemovesCorrectJob(t *testing.T) {
	h := NewHTTPCoordinator(Options{})
	t.Cleanup(h.Close)
	for _, id := range []string{"fjob-1", "fjob-2"} {
		pj := &proxyJob{id: id, status: server.StatusQueued, done: make(chan struct{})}
		pj.fj = &Job{ID: id, Payload: pj}
		h.mu.Lock()
		h.jobs[id] = pj
		h.order = append(h.order, id)
		h.mu.Unlock()
	}
	h.dropJob("fjob-1") // fjob-2 appended after fjob-1's submit failed
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.order) != 1 || h.order[0] != "fjob-2" {
		t.Fatalf("order = %v, want [fjob-2]", h.order)
	}
	if _, ok := h.jobs["fjob-2"]; !ok {
		t.Fatal("rollback dropped the concurrent submission's job")
	}
	if _, ok := h.jobs["fjob-1"]; ok {
		t.Fatal("rolled-back job still in the table")
	}
}

// The coordinator's job history is bounded like server.Scheduler's:
// oldest terminal jobs are forgotten past MaxJobs, live jobs are never
// dropped, and a terminal job releases its retained request payload.
func TestJobHistoryBounded(t *testing.T) {
	h := NewHTTPCoordinator(Options{MaxJobs: 2})
	t.Cleanup(h.Close)
	add := func(id string, terminal bool) *proxyJob {
		pj := &proxyJob{id: id, status: server.StatusQueued, done: make(chan struct{}), reqCopy: racyJob()}
		pj.fj = &Job{ID: id, Payload: pj}
		if terminal {
			pj.finish(server.StatusDone, "", "", nil)
		}
		h.mu.Lock()
		h.jobs[id] = pj
		h.order = append(h.order, id)
		h.trimJobsLocked()
		h.mu.Unlock()
		return pj
	}

	done := add("fjob-1", true)
	if got := done.fjRequest(); got.PTX != "" {
		t.Fatal("terminal job still retains its PTX payload")
	}
	add("fjob-2", true)
	add("fjob-3", true)
	h.mu.Lock()
	if len(h.order) != 2 || h.order[0] != "fjob-2" {
		h.mu.Unlock()
		t.Fatalf("order = %v, want oldest terminal job evicted", h.order)
	}
	_, gone := h.jobs["fjob-1"]
	h.mu.Unlock()
	if gone {
		t.Fatal("evicted job still in the table")
	}

	// A live job pins the history even past the cap.
	add("fjob-4", false)
	add("fjob-5", true)
	add("fjob-6", true)
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.order) != 3 || h.order[0] != "fjob-4" {
		t.Fatalf("order = %v, want live fjob-4 retained with everything after it", h.order)
	}
}

// An unknown node's heartbeat gets 404 + not_found so the worker knows
// to re-join rather than retry forever.
func TestFleetHeartbeatUnknownNode(t *testing.T) {
	coord := NewHTTPCoordinator(Options{})
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() { ts.Close(); coord.Close() })

	body, _ := json.Marshal(HeartbeatRequest{ID: "ghost"})
	resp, err := http.Post(ts.URL+"/fleet/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var errj server.ErrorJSON
	json.NewDecoder(resp.Body).Decode(&errj)
	if errj.Code != server.CodeNotFound {
		t.Fatalf("code %q, want not_found", errj.Code)
	}
}
