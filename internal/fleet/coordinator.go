// Package fleet is the control plane that turns one barracudad into a
// detection fleet: a coordinator owning a consistent-hash ring keyed on
// the module cache key (server.CacheKey), worker registration with a
// heartbeat health state machine, retry-with-exclusion failover, and a
// two-class priority scheduler that keeps small interactive vet/analyze
// jobs from starving behind large batch detection jobs.
//
// The Coordinator core is deliberately passive: every externally driven
// event (Submit, Heartbeat, Tick, Complete, Fail, Join, Leave) is a
// synchronous method that updates state and returns the Assignments the
// caller must now perform. The HTTP front-end performs assignments by
// forwarding jobs to real workers over HTTP; the deterministic cluster
// simulator (internal/fleet/sim) performs them by scheduling virtual
// events. One scheduling brain, two drivers — so everything the sim
// proves about routing, failover and preemption holds verbatim for the
// real fleet.
package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"barracuda/internal/server"
)

// Job is one unit of work routed by the coordinator. Payload is owned
// by the driver (the HTTP front-end stores the original JobRequest, the
// simulator a synthetic spec); the coordinator routes purely on Key and
// Class.
type Job struct {
	ID      string
	Key     string // module cache key: the ring key (server.CacheKey)
	Class   string // server.ClassInteractive or server.ClassBatch
	Payload any

	attempts int
	excluded map[string]struct{} // nodes that already failed this job
	seq      int64               // submission order, for FIFO within class
}

// Attempts is how many times the job has been dispatched.
func (j *Job) Attempts() int { return j.attempts }

// Excluded lists nodes this job must never be routed to again, sorted.
func (j *Job) Excluded() []string {
	out := make([]string, 0, len(j.excluded))
	for n := range j.excluded {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Assignment instructs the driver to run Job on Node.
type Assignment struct {
	Node string
	Job  *Job
}

// Options tunes the coordinator.
type Options struct {
	// Replicas is the virtual-node count per ring member (default 128).
	Replicas int
	// MaxAttempts bounds dispatches per job, counting the first
	// (default 5). A job that exhausts its attempts fails permanently.
	MaxAttempts int
	// MaxJobs bounds the HTTP front-end's retained job history (default
	// 4096, matching server.SchedulerOptions.MaxJobs): oldest terminal
	// jobs past the cap are forgotten so a long-running coordinator does
	// not grow without bound. The scheduling core itself drops jobs as
	// soon as they finish and never retains history.
	MaxJobs int
	// SuspectAfter / DeadAfter are the heartbeat thresholds
	// (defaults 5s / 15s).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// RandomRouting replaces cache-affine ring routing with seeded
	// random placement over eligible nodes. It exists purely as the
	// honest A/B baseline for measuring what warm routing buys
	// (benchtab -fleet); never enable it in production.
	RandomRouting bool
	// RandSeed seeds the RandomRouting picker (deterministic baseline).
	RandSeed int64
	// NoSpill disables batch spill-to-idle: by default a batch job
	// whose warm primary is saturated may run cold on a completely idle
	// successor rather than queue (trading one cache miss for
	// utilization). Interactive jobs always take the first free slot.
	NoSpill bool
	// JSONForward forces coordinator→worker forwarding over the JSON
	// /jobs API instead of the binary streaming protocol. It exists as
	// the honest A/B baseline for measuring what frame forwarding buys
	// (benchtab -proto); stream forwarding already falls back to JSON
	// per job when a worker refuses the upgrade or the job shape only
	// the JSON surface expresses (benchmark modules, repair loops).
	JSONForward bool
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = defaultReplicas
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 4096
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 5 * time.Second
	}
	if o.DeadAfter <= o.SuspectAfter {
		o.DeadAfter = 3 * o.SuspectAfter
	}
	return o
}

// Stats counts coordinator-level scheduling events.
type Stats struct {
	Submitted   int64 `json:"submitted"`
	Dispatched  int64 `json:"dispatched"`
	Completed   int64 `json:"completed"`
	Retries     int64 `json:"retries"`      // re-dispatches after a retryable failure
	FailedPerm  int64 `json:"failed_perm"`  // permanent failures (bad job or attempts exhausted)
	Requeued    int64 `json:"requeued"`     // jobs pulled back from a dead/left node
	QueueJumps  int64 `json:"queue_jumps"`  // interactive dispatched past older queued batch
	Spills      int64 `json:"spills"`       // batch dispatched cold to an idle non-primary
	PrimaryHits int64 `json:"primary_hits"` // dispatches that landed on the ring primary
	WarmHits    int64 `json:"warm_hits"`    // completions the worker reported as cache hits
	Drained     int64 `json:"drained"`      // nodes removed after a clean drain (no requeue)
}

// ErrNoNodes is returned by Submit when the fleet has no members at all.
var ErrNoNodes = errors.New("fleet: no registered workers")

// Coordinator owns the ring, the registry and the two-class dispatch
// queue. Safe for concurrent use; the deterministic simulator drives it
// from a single goroutine so lock order never affects schedules.
type Coordinator struct {
	mu  sync.Mutex
	opt Options

	ring *Ring
	reg  *Registry
	rnd  *rand.Rand // RandomRouting baseline only

	interQ  []*Job // interactive FIFO
	batchQ  []*Job // batch FIFO
	nextSeq int64

	inflight map[string]map[string]*Job // node → job ID → job
	stats    Stats
}

// NewCoordinator builds an empty coordinator.
func NewCoordinator(opt Options) *Coordinator {
	opt = opt.withDefaults()
	return &Coordinator{
		opt:      opt,
		ring:     NewRing(opt.Replicas),
		reg:      NewRegistry(opt.SuspectAfter, opt.DeadAfter),
		rnd:      rand.New(rand.NewSource(opt.RandSeed)),
		inflight: make(map[string]map[string]*Job),
	}
}

// Join registers a worker and drains any queued work it can take.
func (c *Coordinator) Join(id, addr string, capacity int, now time.Time) []Assignment {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg.Join(id, addr, capacity, now)
	c.ring.Add(id)
	if c.inflight[id] == nil {
		c.inflight[id] = make(map[string]*Job)
	}
	return c.dispatchLocked()
}

// Leave removes a worker gracefully; its in-flight jobs are requeued
// (front of their class queue, node excluded) and re-routed.
func (c *Coordinator) Leave(id string) []Assignment {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg.Leave(id)
	c.evictNodeLocked(id)
	return c.dispatchLocked()
}

// Drain begins a graceful departure for a node: it leaves the ring and
// gets no new work, but its in-flight jobs keep running to completion —
// unlike Leave, nothing is requeued. Once the last in-flight job
// finishes (Complete or Fail), the node is removed from the registry.
// Returns the number of jobs still in flight on the node and whether
// the node is known; inflight==0 means the drain finished immediately
// (the node is already gone on return). Draining nodes still heartbeat;
// a beat neither revives them nor cancels the drain.
func (c *Coordinator) Drain(id string, now time.Time) (asgs []Assignment, inflight int, known bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.reg.Drain(id, now) {
		return c.dispatchLocked(), 0, false
	}
	c.ring.Remove(id)
	inflight = len(c.inflight[id])
	if inflight == 0 {
		c.finishDrainLocked(id)
	}
	// Work that would have routed here re-routes to ring successors.
	return c.dispatchLocked(), inflight, true
}

// maybeFinishDrainLocked removes a draining node once its in-flight set
// is empty. Called after Complete/Fail delete a job from the table.
func (c *Coordinator) maybeFinishDrainLocked(id string) {
	info, ok := c.reg.Get(id)
	if !ok || info.State != StateDraining || len(c.inflight[id]) != 0 {
		return
	}
	c.finishDrainLocked(id)
}

func (c *Coordinator) finishDrainLocked(id string) {
	c.reg.Leave(id)
	delete(c.inflight, id)
	c.stats.Drained++
}

// Heartbeat records a worker beat. known=false means the coordinator
// has no such node (e.g. it was declared dead, or the coordinator
// restarted) and the worker must re-Join.
func (c *Coordinator) Heartbeat(id string, stats server.HeartbeatStats, now time.Time) (known bool, asgs []Assignment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.reg.Heartbeat(id, stats, now) {
		return false, nil
	}
	// A revived Suspect becomes routable again: drain the queue.
	return true, c.dispatchLocked()
}

// Tick applies heartbeat timeouts. Nodes that cross the dead threshold
// are removed from the ring and their in-flight jobs re-routed with
// exclusion.
func (c *Coordinator) Tick(now time.Time) []Assignment {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.reg.Tick(now) {
		c.evictNodeLocked(id)
	}
	return c.dispatchLocked()
}

// Submit enqueues a job and dispatches whatever is now routable.
func (c *Coordinator) Submit(job *Job, now time.Time) ([]Assignment, error) {
	if job.Class == "" {
		job.Class = server.ClassBatch
	}
	if job.Class != server.ClassBatch && job.Class != server.ClassInteractive {
		return nil, fmt.Errorf("fleet: job %s: unknown class %q", job.ID, job.Class)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring.Len() == 0 {
		return nil, ErrNoNodes
	}
	if job.excluded == nil {
		job.excluded = make(map[string]struct{})
	}
	c.nextSeq++
	job.seq = c.nextSeq
	c.stats.Submitted++
	c.enqueueLocked(job, false)
	return c.dispatchLocked(), nil
}

// Complete marks an assignment finished. cacheHit is the worker's
// report of whether the module session was warm (drives the WarmHits
// routing-effectiveness counter). live=false means the (node, jobID)
// assignment is not an in-flight one the coordinator knows — the report
// is stale (the node was evicted and the job already requeued) and the
// driver must not treat it as the job's outcome.
//
// A job excludes every node it ever failed on or was evicted from, so
// it can never be routed to the same node twice: presence in the
// in-flight table uniquely identifies the job's live attempt.
func (c *Coordinator) Complete(node, jobID string, cacheHit bool) (asgs []Assignment, live bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.inflight[node]; m != nil {
		if _, ok := m[jobID]; ok {
			delete(m, jobID)
			c.stats.Completed++
			if cacheHit {
				c.stats.WarmHits++
			}
			live = true
			c.maybeFinishDrainLocked(node)
		}
	}
	return c.dispatchLocked(), live
}

// FailOutcome classifies a Fail report.
type FailOutcome int

const (
	// FailStale: the (node, jobID) pair is not a live assignment — the
	// reported attempt was superseded (its node was declared dead and
	// the job requeued, possibly already re-dispatched elsewhere). The
	// driver must ignore the report: the live attempt owns the job.
	FailStale FailOutcome = iota
	// FailRequeued: the job went back to the front of its class queue
	// with the failed node excluded, to retry on a ring successor.
	FailRequeued
	// FailTerminal: the job is permanently failed (non-retryable error
	// or attempts exhausted) and the driver should surface the error.
	FailTerminal
)

// Fail marks an assignment failed. Retryable failures (connection
// errors, 429/503 per server.RetryableCode) exclude the node and
// re-route to the next ring successor; permanent failures (400s) and
// exhausted attempts drop the job. A report for an assignment the
// coordinator no longer tracks — the node was evicted and the job
// requeued in the meantime — returns FailStale and changes nothing (see
// Complete for why presence in-flight identifies the live attempt).
func (c *Coordinator) Fail(node, jobID string, retryable bool) (asgs []Assignment, outcome FailOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.inflight[node]
	job, ok := m[jobID]
	if !ok {
		return c.dispatchLocked(), FailStale
	}
	delete(m, jobID)
	job.excluded[node] = struct{}{}
	if !retryable || job.attempts >= c.opt.MaxAttempts {
		c.stats.FailedPerm++
		c.maybeFinishDrainLocked(node)
		return c.dispatchLocked(), FailTerminal
	}
	c.stats.Retries++
	c.enqueueLocked(job, true)
	c.maybeFinishDrainLocked(node)
	return c.dispatchLocked(), FailRequeued
}

// Nodes snapshots the registry.
func (c *Coordinator) Nodes() []NodeInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reg.List()
}

// Node looks up one registered worker.
func (c *Coordinator) Node(id string) (NodeInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reg.Get(id)
}

// Stats snapshots the scheduling counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// QueueDepths returns the queued-but-undispatched counts per class.
func (c *Coordinator) QueueDepths() (interactive, batch int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.interQ), len(c.batchQ)
}

// InFlight returns the number of dispatched-but-unfinished jobs.
func (c *Coordinator) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, m := range c.inflight {
		n += len(m)
	}
	return n
}

// evictNodeLocked pulls a node out of the ring and requeues its
// in-flight jobs at the front of their class queues with the node
// excluded, preserving their original relative order.
func (c *Coordinator) evictNodeLocked(id string) {
	c.ring.Remove(id)
	m := c.inflight[id]
	delete(c.inflight, id)
	if len(m) == 0 {
		return
	}
	jobs := make([]*Job, 0, len(m))
	for _, j := range m {
		jobs = append(jobs, j)
	}
	// Map order is random; restore submission order for determinism.
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].seq < jobs[b].seq })
	// Prepend in reverse so jobs[0] ends up first.
	for i := len(jobs) - 1; i >= 0; i-- {
		j := jobs[i]
		j.excluded[id] = struct{}{}
		c.stats.Requeued++
		c.enqueueLocked(j, true)
	}
}

// enqueueLocked adds a job to its class queue (front=true for requeues,
// which must not lose their place behind newer submissions).
func (c *Coordinator) enqueueLocked(job *Job, front bool) {
	q := &c.batchQ
	if job.Class == server.ClassInteractive {
		q = &c.interQ
	}
	if front {
		*q = append([]*Job{job}, *q...)
	} else {
		*q = append(*q, job)
	}
}

// batchCap is the batch-usable slot count of a node: one slot is
// reserved for interactive work whenever the node has more than one, so
// a flood of batch detection jobs can never occupy every worker and
// starve a vet/analyze request ("reserved-slot preemption"). Together
// with strict queue priority (interactive always dispatches before any
// queued batch job) this bounds interactive wait by one job service
// time, not by the batch backlog.
func batchCap(capacity int) int {
	if capacity > 1 {
		return capacity - 1
	}
	return capacity
}

// routeLocked picks a node for the job, or "" if nothing is eligible
// right now. Eligible = registered, Alive (Suspect nodes get no new
// work), not excluded by this job's failure history, with a free slot
// for the job's class.
func (c *Coordinator) routeLocked(j *Job) (node string, spill bool) {
	if c.opt.RandomRouting {
		return c.routeRandomLocked(j), false
	}
	seq := c.ring.Sequence(j.Key)
	if j.Class == server.ClassInteractive {
		// Latency first: the first healthy node with any free slot.
		// The primary comes first in seq, so warmth is still preferred
		// when available.
		for _, n := range seq {
			if c.eligibleLocked(j, n) && c.freeSlotsLocked(n) > 0 {
				return n, false
			}
		}
		return "", false
	}
	// Batch: warmth first. Wait for the primary unless it is saturated
	// and some successor is completely idle (spill-to-idle).
	var primary string
	for _, n := range seq {
		if c.eligibleLocked(j, n) {
			primary = n
			break
		}
	}
	if primary == "" {
		return "", false
	}
	info, _ := c.reg.Get(primary)
	if len(c.inflight[primary]) < batchCap(info.Capacity) {
		return primary, false
	}
	if !c.opt.NoSpill {
		for _, n := range seq {
			if n == primary || !c.eligibleLocked(j, n) {
				continue
			}
			if len(c.inflight[n]) == 0 {
				return n, true
			}
		}
	}
	return "", false
}

// routeRandomLocked is the A/B baseline: a seeded-random pick over the
// same eligibility and capacity rules, with no affinity.
func (c *Coordinator) routeRandomLocked(j *Job) string {
	var candidates []string
	for _, n := range c.ring.Nodes() {
		if !c.eligibleLocked(j, n) {
			continue
		}
		if j.Class == server.ClassInteractive {
			if c.freeSlotsLocked(n) > 0 {
				candidates = append(candidates, n)
			}
		} else {
			info, _ := c.reg.Get(n)
			if len(c.inflight[n]) < batchCap(info.Capacity) {
				candidates = append(candidates, n)
			}
		}
	}
	if len(candidates) == 0 {
		return ""
	}
	return candidates[c.rnd.Intn(len(candidates))]
}

func (c *Coordinator) eligibleLocked(j *Job, node string) bool {
	if _, no := j.excluded[node]; no {
		return false
	}
	return c.reg.Alive(node)
}

func (c *Coordinator) freeSlotsLocked(node string) int {
	info, ok := c.reg.Get(node)
	if !ok {
		return 0
	}
	return info.Capacity - len(c.inflight[node])
}

// dispatchLocked drains whatever is routable right now: the interactive
// queue in full priority order, then batch. A single pass per queue —
// jobs that cannot route stay queued for the next event.
func (c *Coordinator) dispatchLocked() []Assignment {
	var out []Assignment
	take := func(q *[]*Job, jumpOver int) {
		kept := (*q)[:0]
		for _, j := range *q {
			node, spill := c.routeLocked(j)
			if node == "" {
				kept = append(kept, j)
				continue
			}
			j.attempts++
			c.inflight[node][j.ID] = j
			c.stats.Dispatched++
			if spill {
				c.stats.Spills++
			}
			if jumpOver > 0 {
				c.stats.QueueJumps++
			}
			if c.ring.Primary(j.Key) == node {
				c.stats.PrimaryHits++
			}
			out = append(out, Assignment{Node: node, Job: j})
		}
		// Zero the tail so requeued pointers don't linger.
		for i := len(kept); i < len(*q); i++ {
			(*q)[i] = nil
		}
		*q = kept
	}
	take(&c.interQ, len(c.batchQ))
	take(&c.batchQ, 0)
	return out
}
