package ptx

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randInstr builds a random valid instruction.
func randInstr(r *rand.Rand) *Instr {
	reg := func(prefix string) Operand { return RegOp(fmt.Sprintf("%%%s%d", prefix, r.Intn(8))) }
	u32 := func() Operand {
		if r.Intn(3) == 0 {
			return ImmOp(int64(r.Intn(1000) - 500))
		}
		return reg("r")
	}
	mem := func() Operand {
		off := int64(r.Intn(5) * 4)
		if r.Intn(4) == 0 {
			off = -off
		}
		return MemReg(fmt.Sprintf("%%rd%d", r.Intn(8)), off)
	}
	guard := func(in *Instr) *Instr {
		if r.Intn(4) == 0 {
			in.Guard = &Guard{Reg: fmt.Sprintf("%%p%d", r.Intn(4)), Neg: r.Intn(2) == 0}
		}
		return in
	}
	intTypes := []Type{U32, S32, U64, S64, B32, B64, U16, S16, U8}
	ty := intTypes[r.Intn(len(intTypes))]
	switch r.Intn(10) {
	case 0:
		return guard(&Instr{Op: OpLd, Space: SpaceGlobal, Cache: CacheCG, Type: ty,
			Dst: reg("r"), HasDst: true, Args: []Operand{mem()}})
	case 1:
		return guard(&Instr{Op: OpSt, Space: SpaceShared, Type: ty,
			Args: []Operand{mem(), u32()}})
	case 2:
		return guard(&Instr{Op: OpAdd, Type: ty, Dst: reg("r"), HasDst: true,
			Args: []Operand{u32(), u32()}})
	case 3:
		return guard(&Instr{Op: OpMad, Lo: true, Type: U32, Dst: reg("r"), HasDst: true,
			Args: []Operand{u32(), u32(), u32()}})
	case 4:
		cmps := []CmpOp{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE}
		return guard(&Instr{Op: OpSetp, Cmp: cmps[r.Intn(len(cmps))], Type: ty,
			Dst: RegOp(fmt.Sprintf("%%p%d", r.Intn(4))), HasDst: true,
			Args: []Operand{u32(), u32()}})
	case 5:
		atoms := []AtomOp{AtomAdd, AtomExch, AtomCas, AtomMin, AtomMax, AtomAnd, AtomOr, AtomXor}
		a := atoms[r.Intn(len(atoms))]
		args := []Operand{mem(), u32()}
		if a == AtomCas {
			args = append(args, u32())
		}
		return &Instr{Op: OpAtom, Space: SpaceGlobal, Atom: a, Type: B32,
			Dst: reg("r"), HasDst: true, Args: args}
	case 6:
		return &Instr{Op: OpMembar, Level: []string{"cta", "gl", "sys"}[r.Intn(3)]}
	case 7:
		return &Instr{Op: OpCvt, Type: U64, Src: U32, Dst: reg("rd"), HasDst: true,
			Args: []Operand{reg("r")}}
	case 8:
		sregs := []Sreg{SregTidX, SregCtaidX, SregNtidX, SregLaneid, SregWarpSize}
		return &Instr{Op: OpMov, Type: U32, Dst: reg("r"), HasDst: true,
			Args: []Operand{SregOp(sregs[r.Intn(len(sregs))])}}
	default:
		return guard(&Instr{Op: OpShl, Type: B32, Dst: reg("r"), HasDst: true,
			Args: []Operand{u32(), ImmOp(int64(r.Intn(31)))}})
	}
}

// TestPropPrintParseRoundTrip generates random kernels, prints them, and
// checks the parse → print fixed point.
func TestPropPrintParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		k := &Kernel{
			Name:   "k",
			Params: []Param{{Name: "p0", Type: U64}},
			Regs: []RegDecl{
				{Type: U32, Prefix: "%r", Count: 8},
				{Type: U64, Prefix: "%rd", Count: 8},
				{Type: Pred, Prefix: "%p", Count: 4},
			},
			Shared: []VarDecl{{Space: SpaceShared, Align: 4, Name: "sm", Size: 64}},
		}
		n := 3 + r.Intn(20)
		for i := 0; i < n; i++ {
			k.Body = append(k.Body, Stmt{Instr: randInstr(r)})
		}
		k.Body = append(k.Body, Stmt{Instr: &Instr{Op: OpRet}})
		m := &Module{AddressSize: 64, Kernels: []*Kernel{k}}
		text := Print(m)
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("seed %d: printed module does not parse: %v\n%s", seed, err, text)
		}
		text2 := Print(m2)
		if text != text2 {
			t.Fatalf("seed %d: print not a fixed point:\n--- first\n%s\n--- second\n%s", seed, text, text2)
		}
		if m2.StaticInstrCount() != n+1 {
			t.Fatalf("seed %d: instruction count %d != %d", seed, m2.StaticInstrCount(), n+1)
		}
	}
}

func TestLocalDeclRoundTrip(t *testing.T) {
	src := `.visible .entry k()
{
	.reg .u64 %rd<4>;
	.local .align 8 .b8 scratch[32];
	mov.u64 %rd1, scratch;
	st.local.u32 [%rd1], 1;
	ret;
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := m.Kernels[0]
	if len(k.Local) != 1 || k.Local[0].Name != "scratch" || k.Local[0].Size != 32 {
		t.Fatalf("local decls = %+v", k.Local)
	}
	if k.LocalBytes() != 32 {
		t.Errorf("LocalBytes = %d", k.LocalBytes())
	}
	text := Print(m)
	if !strings.Contains(text, ".local .align 8 .b8 scratch[32];") {
		t.Errorf("local decl not printed:\n%s", text)
	}
	if _, err := Parse(text); err != nil {
		t.Errorf("re-parse: %v", err)
	}
}
