package ptx

import (
	"fmt"
	"strings"
)

// Print renders the module as PTX text that Parse round-trips.
func Print(m *Module) string {
	var b strings.Builder
	if m.Version != "" {
		fmt.Fprintf(&b, ".version %s\n", m.Version)
	}
	if m.Target != "" {
		fmt.Fprintf(&b, ".target %s\n", m.Target)
	}
	fmt.Fprintf(&b, ".address_size %d\n\n", m.AddressSize)
	for _, d := range m.Globals {
		printVarDecl(&b, d, "")
	}
	for _, k := range m.Kernels {
		PrintKernel(&b, k)
		b.WriteByte('\n')
	}
	return b.String()
}

// PrintKernel renders one kernel.
func PrintKernel(b *strings.Builder, k *Kernel) {
	fmt.Fprintf(b, ".visible .entry %s(", k.Name)
	for i, pa := range k.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, ".param .%s %s", pa.Type, pa.Name)
	}
	b.WriteString(")\n{\n")
	for _, r := range k.Regs {
		fmt.Fprintf(b, "\t.reg .%s %s<%d>;\n", r.Type, r.Prefix, r.Count)
	}
	for _, d := range k.Shared {
		printVarDecl(b, d, "\t")
	}
	for _, d := range k.Local {
		printVarDecl(b, d, "\t")
	}
	for _, st := range k.Body {
		if st.Label != "" {
			fmt.Fprintf(b, "%s:\n", st.Label)
			continue
		}
		b.WriteByte('\t')
		b.WriteString(FormatInstr(st.Instr))
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
}

func printVarDecl(b *strings.Builder, d VarDecl, indent string) {
	space := "." + d.Space.String()
	if d.Align > 1 {
		fmt.Fprintf(b, "%s%s .align %d .b8 %s[%d];\n", indent, space, d.Align, d.Name, d.Size)
	} else {
		fmt.Fprintf(b, "%s%s .b8 %s[%d];\n", indent, space, d.Name, d.Size)
	}
}

// Mnemonic renders the dotted mnemonic of the instruction.
func Mnemonic(in *Instr) string {
	var parts []string
	parts = append(parts, in.Op.String())
	if in.Op == OpLog {
		parts = append(parts, in.LogK.String())
		if in.Space != SpaceNone {
			parts = append(parts, in.Space.String())
		}
		if in.AccSz > 0 {
			parts = append(parts, fmt.Sprintf("sz%d", in.AccSz))
		}
		return strings.Join(parts, ".")
	}
	if in.Uni {
		parts = append(parts, "uni")
	}
	if in.Volatile {
		parts = append(parts, "volatile")
	}
	if in.Space != SpaceNone {
		parts = append(parts, in.Space.String())
	}
	if in.Vec == 2 {
		parts = append(parts, "v2")
	} else if in.Vec == 4 {
		parts = append(parts, "v4")
	}
	if in.Level != "" {
		parts = append(parts, in.Level)
	}
	if in.Cache != CacheNone {
		parts = append(parts, in.Cache.String())
	}
	if in.Atom != AtomNone {
		parts = append(parts, in.Atom.String())
	}
	if in.Cmp != CmpNone {
		parts = append(parts, in.Cmp.String())
	}
	if in.Wide {
		parts = append(parts, "wide")
	}
	if in.Lo {
		parts = append(parts, "lo")
	}
	if in.Hi {
		parts = append(parts, "hi")
	}
	if in.Type != TypeNone {
		parts = append(parts, in.Type.String())
	}
	if in.Src != TypeNone {
		parts = append(parts, in.Src.String())
	}
	return strings.Join(parts, ".")
}

// FormatInstr renders one instruction as PTX text (without indentation).
func FormatInstr(in *Instr) string {
	var b strings.Builder
	if in.Guard != nil {
		b.WriteByte('@')
		if in.Guard.Neg {
			b.WriteByte('!')
		}
		b.WriteString(in.Guard.Reg)
		b.WriteByte(' ')
	}
	b.WriteString(Mnemonic(in))
	first := true
	sep := func() {
		if first {
			b.WriteByte(' ')
			first = false
		} else {
			b.WriteString(", ")
		}
	}
	writeOp := func(o Operand) {
		sep()
		b.WriteString(FormatOperand(o))
	}
	writeGroup := func(os []Operand) {
		sep()
		b.WriteByte('{')
		for i, o := range os {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(FormatOperand(o))
		}
		b.WriteByte('}')
	}
	switch {
	case in.Vec > 1 && in.Op == OpLd && in.HasDst:
		// ld.vN {d0..dN-1}, [addr]
		group := append([]Operand{in.Dst}, in.Args[:in.Vec-1]...)
		writeGroup(group)
		for _, a := range in.Args[in.Vec-1:] {
			writeOp(a)
		}
	case in.Vec > 1 && in.Op == OpSt && len(in.Args) > in.Vec:
		// st.vN [addr], {v0..vN-1}
		writeOp(in.Args[0])
		writeGroup(in.Args[1 : 1+in.Vec])
		for _, a := range in.Args[1+in.Vec:] {
			writeOp(a)
		}
	default:
		if in.HasDst {
			writeOp(in.Dst)
		}
		for _, a := range in.Args {
			writeOp(a)
		}
	}
	b.WriteByte(';')
	return b.String()
}

// FormatOperand renders one operand.
func FormatOperand(o Operand) string {
	switch o.Kind {
	case OpndReg:
		return o.Reg
	case OpndImm:
		return fmt.Sprintf("%d", o.Imm)
	case OpndFImm:
		s := fmt.Sprintf("%g", o.F)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case OpndSreg:
		return o.Sreg.String()
	case OpndMem:
		base := o.BaseReg
		if base == "" {
			base = o.BaseSym
		}
		if o.Off != 0 {
			return fmt.Sprintf("[%s+%d]", base, o.Off)
		}
		return fmt.Sprintf("[%s]", base)
	case OpndSym, OpndLabel:
		return o.Sym
	}
	return "?"
}
