package ptx

import (
	"strings"
	"testing"
)

const patchSrc = `.version 4.3
.target sm_35
.address_size 64

.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<4>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	setp.eq.u32 %p1, %r1, 0;
	@%p1 bra SKIP;
	st.global.u32 [%rd1], %r1;
SKIP:
	ld.global.u32 %r2, [%rd1];
	ret;
}
`

func parsePatchSrc(t *testing.T) *Module {
	t.Helper()
	m, err := Parse(patchSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

func TestCloneModuleIsDeep(t *testing.T) {
	m := parsePatchSrc(t)
	c := CloneModule(m)
	if Print(c) != Print(m) {
		t.Fatal("clone does not print identically")
	}
	// Mutate the clone; the original must be untouched.
	orig := Print(m)
	c.Kernels[0].Body[0].Instr.Op = OpRet
	c.Kernels[0].Body[3].Instr.Guard.Neg = true
	c.Kernels[0].Body[3].Instr.Args = append(c.Kernels[0].Body[3].Instr.Args, ImmOp(7))
	if Print(m) != orig {
		t.Fatal("mutating the clone changed the original")
	}
}

func TestApplyEditsInsertBeforeAfterLabel(t *testing.T) {
	m := parsePatchSrc(t)
	// Instruction 5 is the ld.global after the SKIP label. Insert-before
	// must land after the label (same block as the ld); insert-after on
	// instruction 4 (the st, last of its block) must land before the label.
	got, err := ApplyEdits(m, []Edit{
		{Kernel: "k", At: 5, Ins: []*Instr{NewBarSync(0)}},
		{Kernel: "k", At: 4, After: true, Ins: []*Instr{NewMembar("gl", 0)}},
	})
	if err != nil {
		t.Fatalf("ApplyEdits: %v", err)
	}
	text := Print(got)
	want := "st.global.u32 [%rd1], %r1;\n\tmembar.gl;\nSKIP:\n\tbar.sync 0;\n\tld.global.u32"
	if !strings.Contains(text, want) {
		t.Fatalf("unexpected patched text:\n%s", text)
	}
	// Original untouched.
	if strings.Contains(Print(m), "membar") {
		t.Fatal("ApplyEdits mutated its input module")
	}
}

func TestApplyEditsRemoveAndReplace(t *testing.T) {
	m := parsePatchSrc(t)
	red := &Instr{Op: OpRed, Space: SpaceGlobal, Atom: AtomAdd, Type: U32,
		Args: []Operand{MemReg("%rd1", 0), ImmOp(1)}}
	got, err := ApplyEdits(m, []Edit{{Kernel: "k", At: 4, Remove: 1, Ins: []*Instr{red}}})
	if err != nil {
		t.Fatalf("ApplyEdits: %v", err)
	}
	text := Print(got)
	if strings.Contains(text, "st.global") {
		t.Fatalf("removed instruction still present:\n%s", text)
	}
	if !strings.Contains(text, "red.global.add.u32 [%rd1], 1;") {
		t.Fatalf("replacement missing:\n%s", text)
	}
}

func TestApplyEditsAppendAtEnd(t *testing.T) {
	m := parsePatchSrc(t)
	n := len(m.Kernels[0].Instrs())
	got, err := ApplyEdits(m, []Edit{{Kernel: "k", At: n, Ins: []*Instr{NewBarSync(0)}}})
	if err != nil {
		t.Fatalf("ApplyEdits: %v", err)
	}
	if !strings.Contains(Print(got), "ret;\n\tbar.sync 0;\n}") {
		t.Fatalf("append-at-end misplaced:\n%s", Print(got))
	}
}

func TestApplyEditsErrors(t *testing.T) {
	m := parsePatchSrc(t)
	cases := []Edit{
		{Kernel: "nope", At: 0},
		{Kernel: "k", At: 99},
		{Kernel: "k", At: 7, After: true}, // After on one-past-end
		{Kernel: "k", At: 5, Remove: 9},
		{Kernel: "k", At: 4, Remove: 2}, // removal range crosses SKIP label
	}
	for i, e := range cases {
		if _, err := ApplyEdits(m, []Edit{e}); err == nil {
			t.Errorf("case %d: expected error for edit %+v", i, e)
		}
	}
}

func TestApplyEditsSamePositionOrder(t *testing.T) {
	m := parsePatchSrc(t)
	got, err := ApplyEdits(m, []Edit{
		{Kernel: "k", At: 5, Ins: []*Instr{NewMembar("cta", 0)}},
		{Kernel: "k", At: 5, Ins: []*Instr{NewMembar("gl", 0)}},
	})
	if err != nil {
		t.Fatalf("ApplyEdits: %v", err)
	}
	text := Print(got)
	if !strings.Contains(text, "membar.cta;\n\tmembar.gl;") {
		t.Fatalf("same-position edits out of order:\n%s", text)
	}
}

func TestUnifiedDiff(t *testing.T) {
	m := parsePatchSrc(t)
	patched, err := ApplyEdits(m, []Edit{{Kernel: "k", At: 5, Ins: []*Instr{NewBarSync(0)}}})
	if err != nil {
		t.Fatalf("ApplyEdits: %v", err)
	}
	d := UnifiedDiff("a/k.ptx", "b/k.ptx", Print(m), Print(patched))
	for _, want := range []string{"--- a/k.ptx", "+++ b/k.ptx", "+\tbar.sync 0;", "@@ "} {
		if !strings.Contains(d, want) {
			t.Fatalf("diff missing %q:\n%s", want, d)
		}
	}
	if strings.Contains(d, "-\t") {
		t.Fatalf("pure insertion should delete nothing:\n%s", d)
	}
	if UnifiedDiff("a", "b", Print(m), Print(m)) != "" {
		t.Fatal("diff of identical texts should be empty")
	}
	// A patched module must still parse (round-trip sanity).
	if _, err := Parse(Print(patched)); err != nil {
		t.Fatalf("patched module does not reparse: %v", err)
	}
}
