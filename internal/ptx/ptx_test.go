package ptx

import (
	"strings"
	"testing"
)

const sampleKernel = `
.version 4.3
.target sm_35
.address_size 64

.visible .entry simple(.param .u64 out, .param .u32 n)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<4>;
	.shared .align 4 .b8 smem[128];

	ld.param.u64 %rd1, [out];
	ld.param.u32 %r5, [n];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;
	setp.ge.u32 %p1, %r4, %r5;
	@%p1 bra DONE;
	cvt.u64.u32 %rd2, %r4;
	shl.b64 %rd3, %rd2, 2;
	add.u64 %rd4, %rd1, %rd3;
	st.global.u32 [%rd4], %r4;
	bar.sync 0;
	membar.gl;
	atom.global.add.u32 %r6, [%rd4], 1;
DONE:
	ret;
}
`

func parseSample(t *testing.T) *Module {
	t.Helper()
	m, err := Parse(sampleKernel)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return m
}

func TestParseModuleHeader(t *testing.T) {
	m := parseSample(t)
	if m.Version != "4.3" || m.Target != "sm_35" || m.AddressSize != 64 {
		t.Errorf("header = %q %q %d", m.Version, m.Target, m.AddressSize)
	}
	if len(m.Kernels) != 1 || m.Kernels[0].Name != "simple" {
		t.Fatalf("kernels = %+v", m.Kernels)
	}
}

func TestParseKernelDecls(t *testing.T) {
	k := parseSample(t).Kernels[0]
	if len(k.Params) != 2 || k.Params[0].Name != "out" || k.Params[0].Type != U64 ||
		k.Params[1].Name != "n" || k.Params[1].Type != U32 {
		t.Errorf("params = %+v", k.Params)
	}
	if len(k.Regs) != 3 {
		t.Errorf("regs = %+v", k.Regs)
	}
	if len(k.Shared) != 1 || k.Shared[0].Size != 128 || k.Shared[0].Align != 4 {
		t.Errorf("shared = %+v", k.Shared)
	}
	if k.SharedBytes() != 128 {
		t.Errorf("SharedBytes = %d", k.SharedBytes())
	}
}

func TestParseInstrFields(t *testing.T) {
	k := parseSample(t).Kernels[0]
	ins := k.Instrs()
	find := func(op Op) *Instr {
		for _, in := range ins {
			if in.Op == op {
				return in
			}
		}
		t.Fatalf("no %v instruction", op)
		return nil
	}
	ld := ins[0]
	if ld.Op != OpLd || ld.Space != SpaceParam || ld.Type != U64 {
		t.Errorf("ld.param = %+v", ld)
	}
	st := find(OpSt)
	if st.Space != SpaceGlobal || st.Type != U32 {
		t.Errorf("st = %+v", st)
	}
	if a, ok := st.AddrOperand(); !ok || a.BaseReg != "%rd4" {
		t.Errorf("st addr = %+v ok=%v", a, ok)
	}
	atom := find(OpAtom)
	if atom.Atom != AtomAdd || atom.Space != SpaceGlobal || atom.Type != U32 || !atom.HasDst {
		t.Errorf("atom = %+v", atom)
	}
	bar := find(OpBar)
	if bar.Level != "sync" {
		t.Errorf("bar = %+v", bar)
	}
	mb := find(OpMembar)
	if mb.Level != "gl" {
		t.Errorf("membar = %+v", mb)
	}
	setp := find(OpSetp)
	if setp.Cmp != CmpGE || setp.Type != U32 {
		t.Errorf("setp = %+v", setp)
	}
	bra := find(OpBra)
	if bra.Guard == nil || bra.Guard.Reg != "%p1" || bra.Guard.Neg {
		t.Errorf("bra guard = %+v", bra.Guard)
	}
	if len(bra.Args) != 1 || bra.Args[0].Kind != OpndLabel || bra.Args[0].Sym != "DONE" {
		t.Errorf("bra target = %+v", bra.Args)
	}
	cvt := find(OpCvt)
	if cvt.Type != U64 || cvt.Src != U32 {
		t.Errorf("cvt = %+v", cvt)
	}
	mad := find(OpMad)
	if !mad.Lo || mad.Type != U32 || len(mad.Args) != 3 {
		t.Errorf("mad = %+v", mad)
	}
}

func TestParseLabels(t *testing.T) {
	k := parseSample(t).Kernels[0]
	found := false
	for _, st := range k.Body {
		if st.Label == "DONE" {
			found = true
		}
	}
	if !found {
		t.Error("label DONE not found in body")
	}
}

func TestRoundTrip(t *testing.T) {
	m := parseSample(t)
	text := Print(m)
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse printed module: %v\n%s", err, text)
	}
	if Print(m2) != text {
		t.Errorf("print not a fixed point:\n--- first\n%s\n--- second\n%s", text, Print(m2))
	}
	if m2.StaticInstrCount() != m.StaticInstrCount() {
		t.Errorf("instr count changed: %d vs %d", m.StaticInstrCount(), m2.StaticInstrCount())
	}
}

func TestParseSpecialRegisters(t *testing.T) {
	src := `.visible .entry k() {
	.reg .u32 %r<4>;
	mov.u32 %r1, %laneid;
	mov.u32 %r2, %nctaid.x;
	mov.u32 %r3, WARP_SZ;
	ret;
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ins := m.Kernels[0].Instrs()
	if ins[0].Args[0].Sreg != SregLaneid {
		t.Errorf("laneid = %+v", ins[0].Args[0])
	}
	if ins[1].Args[0].Sreg != SregNctaidX {
		t.Errorf("nctaid.x = %+v", ins[1].Args[0])
	}
	if ins[2].Args[0].Sreg != SregWarpSize {
		t.Errorf("WARP_SZ = %+v", ins[2].Args[0])
	}
}

func TestParseAtomCas(t *testing.T) {
	src := `.visible .entry k(.param .u64 p) {
	.reg .u32 %r<4>;
	.reg .u64 %rd<2>;
	ld.param.u64 %rd1, [p];
	atom.global.cas.b32 %r1, [%rd1], 0, 1;
	atom.global.exch.b32 %r2, [%rd1], 0;
	red.global.add.u32 [%rd1+4], 1;
	ret;
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ins := m.Kernels[0].Instrs()
	cas := ins[1]
	if cas.Atom != AtomCas || len(cas.Args) != 3 {
		t.Errorf("cas = %+v", cas)
	}
	exch := ins[2]
	if exch.Atom != AtomExch {
		t.Errorf("exch = %+v", exch)
	}
	red := ins[3]
	if red.Op != OpRed || red.Atom != AtomAdd || red.HasDst {
		t.Errorf("red = %+v", red)
	}
	if a, ok := red.AddrOperand(); !ok || a.Off != 4 {
		t.Errorf("red addr = %+v", a)
	}
}

func TestParsePredicatedNegated(t *testing.T) {
	src := `.visible .entry k() {
	.reg .u32 %r<4>;
	.reg .pred %p<2>;
	setp.eq.u32 %p1, %r1, 0;
	@!%p1 mov.u32 %r2, 1;
	ret;
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mv := m.Kernels[0].Instrs()[1]
	if mv.Guard == nil || !mv.Guard.Neg || mv.Guard.Reg != "%p1" {
		t.Errorf("guard = %+v", mv.Guard)
	}
}

func TestParseGlobalVarDecl(t *testing.T) {
	src := `.global .align 8 .b8 gdata[256];
.visible .entry k() { ret; }`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Globals) != 1 || m.Globals[0].Name != "gdata" || m.Globals[0].Size != 256 {
		t.Errorf("globals = %+v", m.Globals)
	}
}

func TestParseLogPseudo(t *testing.T) {
	src := `.visible .entry k() {
	.reg .u64 %rd<4>;
	_log.wr.global.sz4 [%rd1];
	_log.bar;
	_log.if;
	ret;
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ins := m.Kernels[0].Instrs()
	if ins[0].Op != OpLog || ins[0].LogK != LogWrite || ins[0].Space != SpaceGlobal || ins[0].AccSz != 4 {
		t.Errorf("_log.wr = %+v", ins[0])
	}
	if ins[1].LogK != LogBar || ins[2].LogK != LogIf {
		t.Errorf("_log kinds = %v %v", ins[1].LogK, ins[2].LogK)
	}
	// Round trip through printer.
	text := Print(m)
	if !strings.Contains(text, "_log.wr.global.sz4 [%rd1];") {
		t.Errorf("printed:\n%s", text)
	}
	if _, err := Parse(text); err != nil {
		t.Errorf("re-parse: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`.visible .entry k() { bogus.u32 %r1; }`,
		`.visible .entry k() { mov.u32 %r1 }`, // missing ';' before '}'
		`.visible .entry k( .param .u99 x ) { ret; }`,
		`.frobnicate 3`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	src := ".visible .entry k() {\n\tret;\n\tbogus.u32 %r1;\n}"
	_, err := Parse(src)
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Line != 3 {
		t.Errorf("error line = %d, want 3; err=%v", perr.Line, perr)
	}
}

func TestParseHexAndFloatLiterals(t *testing.T) {
	src := `.visible .entry k() {
	.reg .u32 %r<4>;
	.reg .f32 %f<4>;
	mov.u32 %r1, 0xff;
	mov.f32 %f1, 0f3F800000;
	mov.f32 %f2, 2.5;
	mov.u32 %r2, -7;
	ret;
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ins := m.Kernels[0].Instrs()
	if ins[0].Args[0].Imm != 255 {
		t.Errorf("hex literal = %d", ins[0].Args[0].Imm)
	}
	if ins[1].Args[0].F != 1.0 {
		t.Errorf("0f literal = %g", ins[1].Args[0].F)
	}
	if ins[2].Args[0].F != 2.5 {
		t.Errorf("float literal = %g", ins[2].Args[0].F)
	}
	if ins[3].Args[0].Imm != -7 {
		t.Errorf("negative literal = %d", ins[3].Args[0].Imm)
	}
}

func TestMemoryAccessClassification(t *testing.T) {
	k := parseSample(t).Kernels[0]
	var n int
	for _, in := range k.Instrs() {
		if in.MemoryAccess() {
			n++
		}
	}
	// st.global + atom.global (param loads are not instrumented).
	if n != 2 {
		t.Errorf("MemoryAccess count = %d, want 2", n)
	}
}

func TestStaticInstrCount(t *testing.T) {
	m := parseSample(t)
	if got := m.StaticInstrCount(); got != 16 {
		t.Errorf("StaticInstrCount = %d, want 16", got)
	}
}

func TestTypeProperties(t *testing.T) {
	if U32.Size() != 4 || F64.Size() != 8 || U8.Size() != 1 || Pred.Size() != 0 {
		t.Error("type sizes wrong")
	}
	if !S32.Signed() || U32.Signed() {
		t.Error("signedness wrong")
	}
	if !F32.Float() || B32.Float() {
		t.Error("floatness wrong")
	}
}

func TestCommentsSkipped(t *testing.T) {
	src := `// leading comment
/* block
   comment */
.visible .entry k() {
	ret; // trailing
}`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}
