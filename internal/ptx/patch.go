package ptx

import (
	"fmt"
	"sort"
)

// This file implements positional patching of parsed modules: deep
// cloning, and application of instruction-level edits expressed against
// a kernel's flat instruction stream (the index space used by
// kernel.CFG and the static analyses). Patched modules keep the
// original instructions' Line/Col fields, so dynamic race reports from
// a patched module remain comparable with reports from the original.

// CloneModule returns a deep copy of m. Mutating the copy (or applying
// edits to it) never aliases into the original.
func CloneModule(m *Module) *Module {
	out := &Module{
		Version:     m.Version,
		Target:      m.Target,
		AddressSize: m.AddressSize,
	}
	out.Globals = append([]VarDecl(nil), m.Globals...)
	for _, k := range m.Kernels {
		out.Kernels = append(out.Kernels, CloneKernel(k))
	}
	return out
}

// CloneKernel returns a deep copy of k.
func CloneKernel(k *Kernel) *Kernel {
	out := &Kernel{Name: k.Name}
	out.Params = append([]Param(nil), k.Params...)
	out.Regs = append([]RegDecl(nil), k.Regs...)
	out.Shared = append([]VarDecl(nil), k.Shared...)
	out.Local = append([]VarDecl(nil), k.Local...)
	out.Body = make([]Stmt, len(k.Body))
	for i, st := range k.Body {
		out.Body[i] = Stmt{Label: st.Label, Line: st.Line, Col: st.Col}
		if st.Instr != nil {
			out.Body[i].Instr = CloneInstr(st.Instr)
		}
	}
	return out
}

// CloneInstr returns a deep copy of one instruction.
func CloneInstr(in *Instr) *Instr {
	cp := *in
	if in.Guard != nil {
		g := *in.Guard
		cp.Guard = &g
	}
	cp.Args = append([]Operand(nil), in.Args...)
	return &cp
}

// Edit is one positional patch against a kernel's flat instruction
// stream (labels excluded, as in Kernel.Instrs). An edit first removes
// Remove instructions starting at index At, then inserts Ins there.
//
// The After flag controls placement relative to labels, which matters
// because acquire/release fence inference (package trace) only pairs a
// fence with an adjacent access in the same basic block:
//
//   - After=false inserts *before* instruction At but *after* any labels
//     preceding it, so the insertion lands at the top of At's block.
//   - After=true inserts *after* instruction At but *before* any labels
//     following it, so the insertion stays in At's block.
//
// At == len(instrs) with After=false appends at the end of the body.
type Edit struct {
	Kernel string
	At     int
	After  bool
	Remove int
	Ins    []*Instr
}

// ApplyEdits returns a deep copy of m with the edits applied; m itself
// is never modified. Edits may target multiple kernels. Within one
// kernel, edits are applied highest-index first so that every edit's At
// refers to the original instruction numbering. Two edits inserting at
// the same position keep their slice order. Removal ranges must not
// overlap and must not span a label.
func ApplyEdits(m *Module, edits []Edit) (*Module, error) {
	out := CloneModule(m)
	byKernel := make(map[string][]Edit)
	for _, e := range edits {
		byKernel[e.Kernel] = append(byKernel[e.Kernel], e)
	}
	for name, kes := range byKernel {
		k := out.Kernel(name)
		if k == nil {
			return nil, fmt.Errorf("ptx: edit targets unknown kernel %q", name)
		}
		if err := applyKernelEdits(k, kes); err != nil {
			return nil, fmt.Errorf("ptx: kernel %s: %w", name, err)
		}
	}
	return out, nil
}

func applyKernelEdits(k *Kernel, edits []Edit) error {
	// Map flat instruction index -> body statement index.
	var stmtOf []int
	for si := range k.Body {
		if k.Body[si].Instr != nil {
			stmtOf = append(stmtOf, si)
		}
	}
	n := len(stmtOf)
	for _, e := range edits {
		if e.At < 0 || e.At > n || (e.After && e.At >= n) {
			return fmt.Errorf("edit at %d out of range (kernel has %d instructions)", e.At, n)
		}
		if e.Remove < 0 || e.At+e.Remove > n {
			return fmt.Errorf("edit at %d removes %d past end", e.At, e.Remove)
		}
		if e.Remove > 0 && e.After {
			return fmt.Errorf("edit at %d: Remove with After is unsupported", e.At)
		}
		// A removal range must be label-free so block structure stays
		// locally intact: removed statements must be contiguous.
		if e.Remove > 1 && stmtOf[e.At+e.Remove-1]-stmtOf[e.At] != e.Remove-1 {
			return fmt.Errorf("edit at %d: removal range crosses a label", e.At)
		}
	}
	// Apply highest anchor first; stable sort keeps same-position edits
	// in slice order after the reversed application below.
	sorted := append([]Edit(nil), edits...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At > sorted[j].At })
	// Same-At edits: applying in reverse slice order at one position
	// leaves the earliest edit's instructions first in the output.
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].At == sorted[i].At {
			j++
		}
		for kk := j - 1; kk >= i; kk-- {
			applyOne(k, stmtOf, sorted[kk])
		}
		i = j
	}
	return nil
}

func applyOne(k *Kernel, stmtOf []int, e Edit) {
	var pos int
	switch {
	case e.At == len(stmtOf):
		pos = len(k.Body)
	case e.After:
		pos = stmtOf[e.At] + 1
	default:
		pos = stmtOf[e.At]
	}
	tail := k.Body[pos+e.Remove:]
	head := k.Body[:pos]
	var ins []Stmt
	for _, in := range e.Ins {
		ins = append(ins, Stmt{Instr: in, Line: in.Line, Col: in.Col})
	}
	body := make([]Stmt, 0, len(head)+len(ins)+len(tail))
	body = append(body, head...)
	body = append(body, ins...)
	body = append(body, tail...)
	k.Body = body
}

// NewBarSync builds a `bar.sync 0;` instruction anchored to the given
// source line (the line of the instruction it is inserted next to, so
// diffs and race reports stay readable).
func NewBarSync(line int) *Instr {
	return &Instr{Op: OpBar, Level: "sync", Args: []Operand{ImmOp(0)}, Line: line}
}

// NewMembar builds a `membar.{cta,gl}` instruction. Global scope orders
// global-space traffic; cta scope suffices for shared memory.
func NewMembar(level string, line int) *Instr {
	return &Instr{Op: OpMembar, Level: level, Line: line}
}
