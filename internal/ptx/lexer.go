package ptx

import (
	"fmt"
	"strings"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF    tokKind = iota
	tokIdent          // identifier, register (%r1), special reg (%tid.x) or directive (.reg)
	tokNumber         // integer or float literal
	tokPunct          // single-character punctuation
)

type token struct {
	kind tokKind
	text string
	line int
	col  int // 1-based column of the token's first byte
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	default:
		return t.text
	}
}

// lexer produces tokens from PTX source text.
type lexer struct {
	src       string
	pos       int
	line      int
	lineStart int // byte offset of the current line's first character
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// col returns the 1-based column of the current position.
func (l *lexer) col() int { return l.pos - l.lineStart + 1 }

// Error is a positioned lex/parse error.
type Error struct {
	Line int
	Col  int // 1-based column, 0 when unknown
	Msg  string
}

func (e *Error) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("ptx: line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("ptx: line %d: %s", e.Line, e.Msg)
}

func (l *lexer) errf(format string, args ...any) *Error {
	return &Error{Line: l.line, Col: l.col(), Msg: fmt.Sprintf(format, args...)}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.'
}

// next returns the next token, skipping whitespace and comments.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
			l.lineStart = l.pos
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, l.errf("unterminated block comment")
			}
			seg := l.src[l.pos : l.pos+2+end+2]
			l.line += strings.Count(seg, "\n")
			if nl := strings.LastIndexByte(seg, '\n'); nl >= 0 {
				l.lineStart = l.pos + nl + 1
			}
			l.pos += 2 + end + 2
		default:
			return l.lexToken()
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col()}, nil
}

func (l *lexer) lexToken() (token, error) {
	c := l.src[l.pos]
	start := l.pos
	startCol := l.col()
	switch {
	case c == '%':
		// Register or special register: % ident (.x suffix allowed via '.').
		l.pos++
		for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start+1 {
			return token{}, l.errf("bare %% in input")
		}
		return token{tokIdent, l.src[start:l.pos], l.line, startCol}, nil
	case c == '.':
		// Directive or dotted continuation handled by identifier rule.
		l.pos++
		for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == start+1 {
			return token{}, l.errf("bare '.' in input")
		}
		return token{tokIdent, l.src[start:l.pos], l.line, startCol}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], l.line, startCol}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		l.pos++
		tok, err := l.lexNumber()
		if err != nil {
			return tok, err
		}
		tok.text = "-" + tok.text
		tok.col = startCol
		return tok, nil
	default:
		switch c {
		case ',', ';', '[', ']', '(', ')', '{', '}', ':', '@', '!', '+', '<', '>':
			l.pos++
			return token{tokPunct, string(c), l.line, startCol}, nil
		}
		return token{}, l.errf("unexpected character %q", c)
	}
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	startCol := l.col()
	if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
		l.pos += 2
		for l.pos < len(l.src) && isHex(l.src[l.pos]) {
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos], l.line, startCol}, nil
	}
	if strings.HasPrefix(l.src[l.pos:], "0f") || strings.HasPrefix(l.src[l.pos:], "0F") {
		// Hex float literal 0fXXXXXXXX (IEEE-754 bits).
		l.pos += 2
		for l.pos < len(l.src) && isHex(l.src[l.pos]) {
			l.pos++
		}
		return token{tokNumber, l.src[start:l.pos], l.line, startCol}, nil
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	return token{tokNumber, l.src[start:l.pos], l.line, startCol}, nil
}

func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
