package ptx

import (
	"fmt"
	"strings"
)

// UnifiedDiff renders a unified diff (3 lines of context) between two
// texts, labelled aName and bName. It returns "" when the texts are
// equal. The implementation is a plain dynamic-programming LCS; PTX
// modules are small, so the quadratic table is irrelevant.
func UnifiedDiff(aName, bName, a, b string) string {
	if a == b {
		return ""
	}
	al := splitLines(a)
	bl := splitLines(b)
	ops := diffOps(al, bl)

	const ctx = 3
	var out strings.Builder
	fmt.Fprintf(&out, "--- %s\n+++ %s\n", aName, bName)

	// Group ops into hunks: runs of changes separated by > 2*ctx equals.
	for i := 0; i < len(ops); {
		// Skip leading equals.
		for i < len(ops) && ops[i].kind == diffEq {
			i++
		}
		if i == len(ops) {
			break
		}
		start := i
		// Extend the hunk while gaps of equal lines stay short.
		end := i
		for j := i; j < len(ops); j++ {
			if ops[j].kind != diffEq {
				end = j + 1
				continue
			}
			// Count the equal run; stop the hunk if it exceeds 2*ctx.
			run := 0
			for j+run < len(ops) && ops[j+run].kind == diffEq {
				run++
			}
			if run > 2*ctx {
				break
			}
			j += run - 1
		}
		hs := start - ctx
		if hs < 0 {
			hs = 0
		}
		he := end + ctx
		if he > len(ops) {
			he = len(ops)
		}
		writeHunk(&out, ops[hs:he])
		i = he
	}
	return out.String()
}

type diffKind uint8

const (
	diffEq diffKind = iota
	diffDel
	diffAdd
)

type diffOp struct {
	kind  diffKind
	text  string
	aLine int // 1-based line in a (eq/del)
	bLine int // 1-based line in b (eq/add)
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func diffOps(a, b []string) []diffOp {
	n, m := len(a), len(b)
	// lcs[i][j] = LCS length of a[i:], b[j:].
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{diffEq, a[i], i + 1, j + 1})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{diffDel, a[i], i + 1, 0})
			i++
		default:
			ops = append(ops, diffOp{diffAdd, b[j], 0, j + 1})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{diffDel, a[i], i + 1, 0})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{diffAdd, b[j], 0, j + 1})
	}
	return ops
}

func writeHunk(out *strings.Builder, ops []diffOp) {
	aStart, bStart := 0, 0
	aCount, bCount := 0, 0
	for _, op := range ops {
		switch op.kind {
		case diffEq:
			if aCount == 0 {
				aStart = op.aLine
			}
			if bCount == 0 {
				bStart = op.bLine
			}
			aCount++
			bCount++
		case diffDel:
			if aCount == 0 {
				aStart = op.aLine
			}
			aCount++
		case diffAdd:
			if bCount == 0 {
				bStart = op.bLine
			}
			bCount++
		}
	}
	if aCount == 0 {
		aStart = 0
	}
	if bCount == 0 {
		bStart = 0
	}
	fmt.Fprintf(out, "@@ -%d,%d +%d,%d @@\n", aStart, aCount, bStart, bCount)
	for _, op := range ops {
		switch op.kind {
		case diffEq:
			out.WriteString(" " + op.text + "\n")
		case diffDel:
			out.WriteString("-" + op.text + "\n")
		case diffAdd:
			out.WriteString("+" + op.text + "\n")
		}
	}
}
