package ptx

import (
	"strings"
	"testing"
)

// TestInstrPositions checks that parsed instructions carry accurate
// line/column positions for lint diagnostics.
func TestInstrPositions(t *testing.T) {
	src := ".version 4.3\n" +
		".target sm_35\n" +
		".address_size 64\n" +
		".visible .entry k()\n" +
		"{\n" +
		"\t.reg .u32 %r<4>;\n" +
		"\tmov.u32 %r1, %tid.x;\n" + // line 7, col 2 (after tab)
		"    bar.sync 0;\n" + // line 8, col 5 (after 4 spaces)
		"\tret;\n" +
		"}\n"
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k := m.Kernels[0]
	var mov, bar *Instr
	for _, s := range k.Body {
		if s.Instr == nil {
			continue
		}
		switch s.Instr.Op {
		case OpMov:
			mov = s.Instr
		case OpBar:
			bar = s.Instr
		}
	}
	if mov == nil || bar == nil {
		t.Fatalf("missing instructions in %+v", k.Body)
	}
	if mov.Line != 7 || mov.Col != 2 {
		t.Errorf("mov position = %d:%d, want 7:2", mov.Line, mov.Col)
	}
	if bar.Line != 8 || bar.Col != 5 {
		t.Errorf("bar position = %d:%d, want 8:5", bar.Line, bar.Col)
	}
}

// TestLabelStmtPosition checks label statements carry positions too.
func TestLabelStmtPosition(t *testing.T) {
	src := ".version 4.3\n.target sm_35\n.address_size 64\n" +
		".visible .entry k()\n{\n" +
		"LOOP:\n" + // line 6, col 1
		"\tret;\n}\n"
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for _, s := range m.Kernels[0].Body {
		if s.Label == "LOOP" {
			if s.Line != 6 || s.Col != 1 {
				t.Errorf("label position = %d:%d, want 6:1", s.Line, s.Col)
			}
			return
		}
	}
	t.Fatal("label LOOP not found")
}

// TestErrorHasColumn checks parse errors carry a column and render it.
func TestErrorHasColumn(t *testing.T) {
	src := ".version 4.3\n.target sm_35\n.address_size 64\n" +
		".visible .entry k()\n{\n\t???;\n}\n"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected parse error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if pe.Line != 6 || pe.Col == 0 {
		t.Errorf("error position = %d:%d, want line 6 with nonzero col", pe.Line, pe.Col)
	}
	if !strings.Contains(pe.Error(), "6:") {
		t.Errorf("error string %q missing line:col", pe.Error())
	}
}
