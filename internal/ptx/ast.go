// Package ptx implements a lexer, parser, typed AST and printer for the
// subset of Nvidia's PTX virtual assembly language that BARRACUDA's
// semantics (PLDI 2017, §2–3) assigns meaning to: loads and stores with
// memory-space and cache-operator modifiers, atomics, memory fences,
// barriers, predicated instructions, branches, and the arithmetic core.
//
// The package also defines the `_log.*` pseudo-instructions that the
// instrumentation framework (package instrument) inserts; they are part of
// the instruction stream executed by the simulator but are printed with a
// leading underscore so instrumented modules remain round-trippable.
package ptx

import "fmt"

// Op identifies an instruction's base mnemonic.
type Op int

// Base mnemonics of the supported PTX subset.
const (
	OpInvalid Op = iota
	OpLd
	OpSt
	OpMov
	OpAdd
	OpSub
	OpMul
	OpMad
	OpDiv
	OpRem
	OpMin
	OpMax
	OpAnd
	OpOr
	OpXor
	OpNot
	OpNeg
	OpShl
	OpShr
	OpSetp
	OpSelp
	OpCvt
	OpCvta
	OpBra
	OpBar
	OpMembar
	OpAtom
	OpRed
	OpRet
	OpExit
	OpLog // `_log.*` pseudo-instruction inserted by the instrumenter
)

var opNames = map[Op]string{
	OpLd: "ld", OpSt: "st", OpMov: "mov", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpMad: "mad", OpDiv: "div", OpRem: "rem", OpMin: "min",
	OpMax: "max", OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpNeg: "neg", OpShl: "shl", OpShr: "shr", OpSetp: "setp",
	OpSelp: "selp", OpCvt: "cvt", OpCvta: "cvta", OpBra: "bra",
	OpBar: "bar", OpMembar: "membar", OpAtom: "atom", OpRed: "red",
	OpRet: "ret", OpExit: "exit", OpLog: "_log",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Space is a PTX state space.
type Space int

// Memory state spaces.
const (
	SpaceNone Space = iota
	SpaceGlobal
	SpaceShared
	SpaceLocal
	SpaceParam
	SpaceConst
)

var spaceNames = map[Space]string{
	SpaceGlobal: "global", SpaceShared: "shared", SpaceLocal: "local",
	SpaceParam: "param", SpaceConst: "const",
}

func (s Space) String() string {
	if n, ok := spaceNames[s]; ok {
		return n
	}
	return "generic"
}

// CacheOp is a load/store cache operator (.cg skips the incoherent L1).
type CacheOp int

// Cache operators.
const (
	CacheNone CacheOp = iota
	CacheCA           // cache at all levels
	CacheCG           // cache global (skip L1)
	CacheCS           // cache streaming
	CacheCV           // don't cache, volatile
	CacheWB           // write-back
	CacheWT           // write-through
)

var cacheNames = map[CacheOp]string{
	CacheCA: "ca", CacheCG: "cg", CacheCS: "cs", CacheCV: "cv",
	CacheWB: "wb", CacheWT: "wt",
}

func (c CacheOp) String() string {
	if n, ok := cacheNames[c]; ok {
		return n
	}
	return ""
}

// Type is a PTX scalar type.
type Type int

// Scalar types.
const (
	TypeNone Type = iota
	U8
	U16
	U32
	U64
	S8
	S16
	S32
	S64
	B8
	B16
	B32
	B64
	F32
	F64
	Pred
)

var typeNames = map[Type]string{
	U8: "u8", U16: "u16", U32: "u32", U64: "u64",
	S8: "s8", S16: "s16", S32: "s32", S64: "s64",
	B8: "b8", B16: "b16", B32: "b32", B64: "b64",
	F32: "f32", F64: "f64", Pred: "pred",
}

func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return "?"
}

// Size returns the width of the type in bytes (0 for predicates).
func (t Type) Size() int {
	switch t {
	case U8, S8, B8:
		return 1
	case U16, S16, B16:
		return 2
	case U32, S32, B32, F32:
		return 4
	case U64, S64, B64, F64:
		return 8
	}
	return 0
}

// Signed reports whether the type uses signed integer interpretation.
func (t Type) Signed() bool { return t == S8 || t == S16 || t == S32 || t == S64 }

// Float reports whether the type is floating point.
func (t Type) Float() bool { return t == F32 || t == F64 }

// CmpOp is a setp comparison operator.
type CmpOp int

// Comparison operators.
const (
	CmpNone CmpOp = iota
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

var cmpNames = map[CmpOp]string{
	CmpEQ: "eq", CmpNE: "ne", CmpLT: "lt", CmpLE: "le", CmpGT: "gt", CmpGE: "ge",
}

func (c CmpOp) String() string {
	if n, ok := cmpNames[c]; ok {
		return n
	}
	return "?"
}

// AtomOp is an atomic read-modify-write operator.
type AtomOp int

// Atomic operators. Exch and Cas receive the lock-idiom treatment in
// acquire/release inference (§3.1).
const (
	AtomNone AtomOp = iota
	AtomAdd
	AtomExch
	AtomCas
	AtomMin
	AtomMax
	AtomAnd
	AtomOr
	AtomXor
	AtomInc
	AtomDec
)

var atomNames = map[AtomOp]string{
	AtomAdd: "add", AtomExch: "exch", AtomCas: "cas", AtomMin: "min",
	AtomMax: "max", AtomAnd: "and", AtomOr: "or", AtomXor: "xor",
	AtomInc: "inc", AtomDec: "dec",
}

func (a AtomOp) String() string {
	if n, ok := atomNames[a]; ok {
		return n
	}
	return "?"
}

// Sreg is a special (read-only) register.
type Sreg int

// Special registers. Axis-indexed registers encode the axis in the low bits.
const (
	SregNone Sreg = iota
	SregTidX
	SregTidY
	SregTidZ
	SregNtidX
	SregNtidY
	SregNtidZ
	SregCtaidX
	SregCtaidY
	SregCtaidZ
	SregNctaidX
	SregNctaidY
	SregNctaidZ
	SregLaneid
	SregWarpid
	SregWarpSize
)

var sregNames = map[Sreg]string{
	SregTidX: "%tid.x", SregTidY: "%tid.y", SregTidZ: "%tid.z",
	SregNtidX: "%ntid.x", SregNtidY: "%ntid.y", SregNtidZ: "%ntid.z",
	SregCtaidX: "%ctaid.x", SregCtaidY: "%ctaid.y", SregCtaidZ: "%ctaid.z",
	SregNctaidX: "%nctaid.x", SregNctaidY: "%nctaid.y", SregNctaidZ: "%nctaid.z",
	SregLaneid: "%laneid", SregWarpid: "%warpid", SregWarpSize: "WARP_SZ",
}

func (s Sreg) String() string {
	if n, ok := sregNames[s]; ok {
		return n
	}
	return "%?"
}

// OperandKind discriminates Operand.
type OperandKind int

// Operand kinds.
const (
	OpndReg   OperandKind = iota // general or predicate register, e.g. %r1
	OpndImm                      // integer immediate
	OpndFImm                     // floating-point immediate
	OpndSreg                     // special register
	OpndMem                      // memory operand [base+off]
	OpndSym                      // symbol reference (variable or param name)
	OpndLabel                    // branch target label
)

// Operand is one instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  string // OpndReg: register name including '%'
	Imm  int64  // OpndImm
	F    float64
	Sreg Sreg
	// OpndMem fields: exactly one of BaseReg/BaseSym is set.
	BaseReg string
	BaseSym string
	Off     int64
	Sym     string // OpndSym / OpndLabel
}

// Reg constructs a register operand.
func RegOp(name string) Operand { return Operand{Kind: OpndReg, Reg: name} }

// ImmOp constructs an integer immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: OpndImm, Imm: v} }

// SregOp constructs a special-register operand.
func SregOp(s Sreg) Operand { return Operand{Kind: OpndSreg, Sreg: s} }

// MemReg constructs a [reg+off] memory operand.
func MemReg(reg string, off int64) Operand {
	return Operand{Kind: OpndMem, BaseReg: reg, Off: off}
}

// MemSym constructs a [sym+off] memory operand.
func MemSym(sym string, off int64) Operand {
	return Operand{Kind: OpndMem, BaseSym: sym, Off: off}
}

// SymOp constructs a symbol-reference operand.
func SymOp(name string) Operand { return Operand{Kind: OpndSym, Sym: name} }

// LabelOp constructs a label-reference operand.
func LabelOp(name string) Operand { return Operand{Kind: OpndLabel, Sym: name} }

// Guard is an instruction predicate guard (@%p or @!%p).
type Guard struct {
	Reg string // predicate register including '%'
	Neg bool   // @!%p
}

// LogKind identifies a `_log` pseudo-instruction variety. The concrete
// trace-operation mapping lives in package trace; the instrumenter chooses
// the kind statically.
type LogKind int

// Log kinds inserted by the instrumenter.
const (
	LogNone LogKind = iota
	LogRead
	LogWrite
	LogAtom
	LogAcqBlk
	LogRelBlk
	LogArBlk
	LogAcqGlb
	LogRelGlb
	LogArGlb
	LogBar
	LogIf
	LogElse
	LogFi
)

var logNames = map[LogKind]string{
	LogRead: "rd", LogWrite: "wr", LogAtom: "atm",
	LogAcqBlk: "acqblk", LogRelBlk: "relblk", LogArBlk: "arblk",
	LogAcqGlb: "acqglb", LogRelGlb: "relglb", LogArGlb: "arglb",
	LogBar: "bar", LogIf: "if", LogElse: "else", LogFi: "fi",
}

var logKindByName = invertLog()

func invertLog() map[string]LogKind {
	m := make(map[string]LogKind, len(logNames))
	for k, v := range logNames {
		m[v] = k
	}
	return m
}

func (k LogKind) String() string {
	if n, ok := logNames[k]; ok {
		return n
	}
	return "?"
}

// Instr is a single PTX instruction.
type Instr struct {
	Guard *Guard // optional @%p predicate guard

	Op       Op
	Space    Space
	Cache    CacheOp
	Type     Type
	Src      Type // cvt source type
	Cmp      CmpOp
	Atom     AtomOp
	Wide     bool    // mul.wide / mad.wide
	Lo       bool    // mul.lo / mad.lo
	Hi       bool    // mul.hi
	Uni      bool    // bra.uni
	Volatile bool    // ld.volatile / st.volatile
	Vec      int     // vector width for ld/st .v2/.v4 (0 = scalar)
	Level    string  // membar: cta|gl|sys, bar: sync, cvta: to
	LogK     LogKind // _log pseudo-instruction kind
	AccSz    int     // _log.{rd,wr,...}: access size in bytes
	LogOnce  bool    // _log site statically proven loop-invariant (filter hint)
	Dst      Operand // destination (zero Operand when none)
	HasDst   bool
	Args     []Operand
	Line     int // 1-based source line, 0 when synthesized
	Col      int // 1-based source column, 0 when synthesized
}

// MemoryAccess reports whether the instruction reads or writes memory
// that BARRACUDA instruments: the global and shared spaces. Local memory
// is thread-private and cannot race, so it is executed but never logged.
func (in *Instr) MemoryAccess() bool {
	switch in.Op {
	case OpLd, OpSt, OpAtom, OpRed:
		return in.Space == SpaceGlobal || in.Space == SpaceShared
	}
	return false
}

// AddrOperand returns the memory operand of a load/store/atomic and true,
// or a zero operand and false for other instructions. For vector loads the
// address follows the extra destination registers in Args.
func (in *Instr) AddrOperand() (Operand, bool) {
	switch in.Op {
	case OpLd, OpSt, OpAtom, OpRed, OpLog:
		for _, a := range in.Args {
			if a.Kind == OpndMem {
				return a, true
			}
		}
	}
	return Operand{}, false
}

// AccessBytes returns the total bytes touched by a memory instruction
// (the element size times the vector width).
func (in *Instr) AccessBytes() int {
	n := in.Type.Size()
	if in.Vec > 1 {
		n *= in.Vec
	}
	return n
}

// Stmt is a body statement: either a label definition or an instruction.
type Stmt struct {
	Label string // non-empty for a label statement
	Instr *Instr // non-nil for an instruction statement
	Line  int
	Col   int
}

// Param is a kernel parameter declaration.
type Param struct {
	Name string
	Type Type
}

// RegDecl is a `.reg .u32 %r<10>;` declaration.
type RegDecl struct {
	Type   Type
	Prefix string // e.g. "%r"
	Count  int
}

// VarDecl is a `.shared`/`.global` array declaration.
type VarDecl struct {
	Space Space
	Align int
	Name  string
	Size  int64 // bytes
}

// Kernel is one `.entry` function.
type Kernel struct {
	Name   string
	Params []Param
	Regs   []RegDecl
	Shared []VarDecl
	Local  []VarDecl // per-thread .local declarations
	Body   []Stmt
}

// Instrs returns the kernel's instructions in order (labels skipped).
func (k *Kernel) Instrs() []*Instr {
	var out []*Instr
	for i := range k.Body {
		if k.Body[i].Instr != nil {
			out = append(out, k.Body[i].Instr)
		}
	}
	return out
}

// SharedBytes returns the total static shared-memory footprint.
func (k *Kernel) SharedBytes() int64 { return varBytes(k.Shared) }

// LocalBytes returns the per-thread local-memory footprint.
func (k *Kernel) LocalBytes() int64 { return varBytes(k.Local) }

func varBytes(decls []VarDecl) int64 {
	var n int64
	for _, d := range decls {
		a := int64(d.Align)
		if a > 1 {
			n = (n + a - 1) / a * a
		}
		n += d.Size
	}
	return n
}

// Module is a parsed PTX translation unit.
type Module struct {
	Version     string
	Target      string
	AddressSize int
	Globals     []VarDecl
	Kernels     []*Kernel
}

// Kernel returns the kernel with the given name, or nil.
func (m *Module) Kernel(name string) *Kernel {
	for _, k := range m.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// StaticInstrCount returns the number of static instructions across all
// kernels (Table 1, column 2).
func (m *Module) StaticInstrCount() int {
	n := 0
	for _, k := range m.Kernels {
		n += len(k.Instrs())
	}
	return n
}
