package ptx

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse parses a PTX translation unit.
func Parse(src string) (*Module, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseModule()
}

// ParseKernel parses a source containing a single kernel and returns it.
func ParseKernel(src string) (*Kernel, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(m.Kernels) != 1 {
		return nil, &Error{Line: 1, Msg: "expected exactly one kernel"}
	}
	return m.Kernels[0], nil
}

// MustParse parses src and panics on error; for tests and embedded kernels.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) *Error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errf("expected %q, found %q", s, p.tok.String())
	}
	return p.advance()
}

func (p *parser) atPunct(s string) bool {
	return p.tok.kind == tokPunct && p.tok.text == s
}

func (p *parser) parseModule() (*Module, error) {
	m := &Module{AddressSize: 64}
	for p.tok.kind != tokEOF {
		if p.tok.kind != tokIdent {
			return nil, p.errf("expected directive, found %q", p.tok.String())
		}
		switch {
		case p.tok.text == ".version":
			if err := p.advance(); err != nil {
				return nil, err
			}
			m.Version = p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.tok.text == ".target":
			if err := p.advance(); err != nil {
				return nil, err
			}
			m.Target = p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.tok.text == ".address_size":
			if err := p.advance(); err != nil {
				return nil, err
			}
			n, err := strconv.Atoi(p.tok.text)
			if err != nil {
				return nil, p.errf("bad address size %q", p.tok.text)
			}
			m.AddressSize = n
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.tok.text == ".global":
			d, err := p.parseVarDecl(SpaceGlobal)
			if err != nil {
				return nil, err
			}
			m.Globals = append(m.Globals, d)
		case p.tok.text == ".visible" || p.tok.text == ".entry":
			k, err := p.parseKernel()
			if err != nil {
				return nil, err
			}
			m.Kernels = append(m.Kernels, k)
		default:
			return nil, p.errf("unsupported module directive %q", p.tok.text)
		}
	}
	return m, nil
}

// parseVarDecl parses `.global|.shared [.align N] .bK name[SIZE];` and
// scalar forms `.global .u32 name;`.
func (p *parser) parseVarDecl(space Space) (VarDecl, error) {
	d := VarDecl{Space: space, Align: 1}
	if err := p.advance(); err != nil { // consume .global/.shared
		return d, err
	}
	if p.tok.text == ".align" {
		if err := p.advance(); err != nil {
			return d, err
		}
		a, err := strconv.Atoi(p.tok.text)
		if err != nil {
			return d, p.errf("bad alignment %q", p.tok.text)
		}
		d.Align = a
		if err := p.advance(); err != nil {
			return d, err
		}
	}
	ty, ok := parseTypeName(p.tok.text)
	if !ok {
		return d, p.errf("expected type in variable declaration, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return d, err
	}
	if p.tok.kind != tokIdent {
		return d, p.errf("expected variable name, found %q", p.tok.String())
	}
	d.Name = p.tok.text
	if err := p.advance(); err != nil {
		return d, err
	}
	if p.atPunct("[") {
		if err := p.advance(); err != nil {
			return d, err
		}
		n, err := strconv.ParseInt(p.tok.text, 0, 64)
		if err != nil {
			return d, p.errf("bad array size %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return d, err
		}
		if err := p.expectPunct("]"); err != nil {
			return d, err
		}
		d.Size = n * int64(max(ty.Size(), 1))
	} else {
		d.Size = int64(max(ty.Size(), 1))
	}
	if err := p.expectPunct(";"); err != nil {
		return d, err
	}
	return d, nil
}

func (p *parser) parseKernel() (*Kernel, error) {
	// Optional .visible prefix.
	if p.tok.text == ".visible" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.text != ".entry" {
		return nil, p.errf("expected .entry, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, p.errf("expected kernel name, found %q", p.tok.String())
	}
	k := &Kernel{Name: p.tok.text}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.atPunct("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for !p.atPunct(")") {
			if p.tok.text != ".param" {
				return nil, p.errf("expected .param, found %q", p.tok.String())
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			ty, ok := parseTypeName(p.tok.text)
			if !ok {
				return nil, p.errf("expected param type, found %q", p.tok.text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokIdent {
				return nil, p.errf("expected param name, found %q", p.tok.String())
			}
			k.Params = append(k.Params, Param{Name: p.tok.text, Type: ty})
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.atPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.advance(); err != nil { // consume ')'
			return nil, err
		}
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.atPunct("}") {
		switch {
		case p.tok.text == ".reg":
			rd, err := p.parseRegDecl()
			if err != nil {
				return nil, err
			}
			k.Regs = append(k.Regs, rd)
		case p.tok.text == ".shared":
			d, err := p.parseVarDecl(SpaceShared)
			if err != nil {
				return nil, err
			}
			k.Shared = append(k.Shared, d)
		case p.tok.text == ".local":
			d, err := p.parseVarDecl(SpaceLocal)
			if err != nil {
				return nil, err
			}
			k.Local = append(k.Local, d)
		default:
			st, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			k.Body = append(k.Body, st)
		}
	}
	return k, p.advance() // consume '}'
}

// parseRegDecl parses `.reg .u32 %r<10>;` or `.reg .pred %p<4>;`.
func (p *parser) parseRegDecl() (RegDecl, error) {
	var rd RegDecl
	if err := p.advance(); err != nil { // consume .reg
		return rd, err
	}
	ty, ok := parseTypeName(p.tok.text)
	if !ok {
		return rd, p.errf("expected register type, found %q", p.tok.text)
	}
	rd.Type = ty
	if err := p.advance(); err != nil {
		return rd, err
	}
	if p.tok.kind != tokIdent || !strings.HasPrefix(p.tok.text, "%") {
		return rd, p.errf("expected register prefix, found %q", p.tok.String())
	}
	rd.Prefix = p.tok.text
	if err := p.advance(); err != nil {
		return rd, err
	}
	if err := p.expectPunct("<"); err != nil {
		return rd, err
	}
	n, err := strconv.Atoi(p.tok.text)
	if err != nil {
		return rd, p.errf("bad register count %q", p.tok.text)
	}
	rd.Count = n
	if err := p.advance(); err != nil {
		return rd, err
	}
	if err := p.expectPunct(">"); err != nil {
		return rd, err
	}
	return rd, p.expectPunct(";")
}

// parseStmt parses one label or instruction.
func (p *parser) parseStmt() (Stmt, error) {
	line, col := p.tok.line, p.tok.col
	// Label: IDENT ':'
	if p.tok.kind == tokIdent && !strings.HasPrefix(p.tok.text, "%") && !strings.HasPrefix(p.tok.text, ".") {
		// Look ahead for ':': need to distinguish "LBB1:" from "ret;".
		save := *p.lex
		saveTok := p.tok
		name := p.tok.text
		if err := p.advance(); err != nil {
			return Stmt{}, err
		}
		if p.atPunct(":") {
			if err := p.advance(); err != nil {
				return Stmt{}, err
			}
			return Stmt{Label: name, Line: line, Col: col}, nil
		}
		*p.lex = save
		p.tok = saveTok
	}
	in, err := p.parseInstr()
	if err != nil {
		return Stmt{}, err
	}
	return Stmt{Instr: in, Line: line, Col: col}, nil
}

func (p *parser) parseInstr() (*Instr, error) {
	in := &Instr{Line: p.tok.line, Col: p.tok.col}
	// Optional guard @%p / @!%p.
	if p.atPunct("@") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		g := &Guard{}
		if p.atPunct("!") {
			g.Neg = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind != tokIdent || !strings.HasPrefix(p.tok.text, "%") {
			return nil, p.errf("expected predicate register after @, found %q", p.tok.String())
		}
		g.Reg = p.tok.text
		in.Guard = g
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokIdent {
		return nil, p.errf("expected instruction mnemonic, found %q", p.tok.String())
	}
	if err := parseMnemonic(p.tok.text, in); err != nil {
		return nil, &Error{Line: p.tok.line, Msg: err.Error()}
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	// Operands until ';'. A brace group {%r1, %r2, ...} (vector ld/st)
	// contributes its members in order.
	var opnds []Operand
	for !p.atPunct(";") {
		if p.atPunct("{") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			for !p.atPunct("}") {
				o, err := p.parseOperand()
				if err != nil {
					return nil, err
				}
				opnds = append(opnds, o)
				if p.atPunct(",") {
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			if err := p.advance(); err != nil { // consume '}'
				return nil, err
			}
		} else {
			o, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			opnds = append(opnds, o)
		}
		if p.atPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.advance(); err != nil { // consume ';'
		return nil, err
	}
	assignOperands(in, opnds)
	return in, nil
}

// assignOperands splits the flat operand list into Dst and Args according
// to the instruction kind.
func assignOperands(in *Instr, opnds []Operand) {
	hasDst := false
	switch in.Op {
	case OpLd, OpMov, OpAdd, OpSub, OpMul, OpMad, OpDiv, OpRem, OpMin, OpMax,
		OpAnd, OpOr, OpXor, OpNot, OpNeg, OpShl, OpShr, OpSetp, OpSelp,
		OpCvt, OpCvta, OpAtom:
		hasDst = len(opnds) > 0
	case OpBra:
		if len(opnds) == 1 && opnds[0].Kind == OpndSym {
			opnds[0].Kind = OpndLabel
		}
	}
	if hasDst {
		in.Dst = opnds[0]
		in.HasDst = true
		in.Args = opnds[1:]
	} else {
		in.Args = opnds
	}
	// Branch target may have parsed as a symbol.
	if in.Op == OpBra {
		for i := range in.Args {
			if in.Args[i].Kind == OpndSym {
				in.Args[i].Kind = OpndLabel
			}
		}
	}
}

func (p *parser) parseOperand() (Operand, error) {
	switch {
	case p.atPunct("["):
		if err := p.advance(); err != nil {
			return Operand{}, err
		}
		var o Operand
		o.Kind = OpndMem
		if p.tok.kind != tokIdent {
			return Operand{}, p.errf("expected base in memory operand, found %q", p.tok.String())
		}
		if strings.HasPrefix(p.tok.text, "%") {
			o.BaseReg = p.tok.text
		} else {
			o.BaseSym = p.tok.text
		}
		if err := p.advance(); err != nil {
			return Operand{}, err
		}
		if p.atPunct("+") {
			if err := p.advance(); err != nil {
				return Operand{}, err
			}
			n, err := strconv.ParseInt(p.tok.text, 0, 64)
			if err != nil {
				return Operand{}, p.errf("bad memory offset %q", p.tok.text)
			}
			o.Off = n
			if err := p.advance(); err != nil {
				return Operand{}, err
			}
		}
		if err := p.expectPunct("]"); err != nil {
			return Operand{}, err
		}
		return o, nil
	case p.tok.kind == tokNumber:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return Operand{}, err
		}
		neg := strings.HasPrefix(text, "-")
		body := strings.TrimPrefix(text, "-")
		if strings.HasPrefix(body, "0f") || strings.HasPrefix(body, "0F") {
			bits, err := strconv.ParseUint(body[2:], 16, 32)
			if err != nil {
				return Operand{}, p.errf("bad float literal %q", text)
			}
			f := float64(math.Float32frombits(uint32(bits)))
			if neg {
				f = -f
			}
			return Operand{Kind: OpndFImm, F: f}, nil
		}
		if strings.ContainsAny(body, ".") && !strings.HasPrefix(body, "0x") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return Operand{}, p.errf("bad float literal %q", text)
			}
			return Operand{Kind: OpndFImm, F: f}, nil
		}
		n, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			// very large unsigned hex
			u, uerr := strconv.ParseUint(body, 0, 64)
			if uerr != nil {
				return Operand{}, p.errf("bad integer literal %q", text)
			}
			n = int64(u)
			if neg {
				n = -n
			}
		}
		return Operand{Kind: OpndImm, Imm: n}, nil
	case p.tok.kind == tokIdent && strings.HasPrefix(p.tok.text, "%"):
		name := p.tok.text
		if err := p.advance(); err != nil {
			return Operand{}, err
		}
		if s, ok := sregByName[name]; ok {
			return Operand{Kind: OpndSreg, Sreg: s}, nil
		}
		return Operand{Kind: OpndReg, Reg: name}, nil
	case p.tok.kind == tokIdent && p.tok.text == "WARP_SZ":
		if err := p.advance(); err != nil {
			return Operand{}, err
		}
		return Operand{Kind: OpndSreg, Sreg: SregWarpSize}, nil
	case p.tok.kind == tokIdent && !strings.HasPrefix(p.tok.text, "."):
		name := p.tok.text
		if err := p.advance(); err != nil {
			return Operand{}, err
		}
		return Operand{Kind: OpndSym, Sym: name}, nil
	}
	return Operand{}, p.errf("unexpected operand %q", p.tok.String())
}

var sregByName = invertSregs()

func invertSregs() map[string]Sreg {
	m := make(map[string]Sreg, len(sregNames))
	for s, n := range sregNames {
		m[n] = s
	}
	return m
}

var typeByName = invertTypes()

func invertTypes() map[string]Type {
	m := make(map[string]Type, len(typeNames))
	for t, n := range typeNames {
		m["."+n] = t
	}
	return m
}

func parseTypeName(s string) (Type, bool) {
	t, ok := typeByName[s]
	return t, ok
}

var cmpByName = invertCmps()

func invertCmps() map[string]CmpOp {
	m := make(map[string]CmpOp, len(cmpNames))
	for c, n := range cmpNames {
		m[n] = c
	}
	return m
}

var atomByName = invertAtoms()

func invertAtoms() map[string]AtomOp {
	m := make(map[string]AtomOp, len(atomNames))
	for a, n := range atomNames {
		m[n] = a
	}
	return m
}

var spaceByName = map[string]Space{
	"global": SpaceGlobal, "shared": SpaceShared, "local": SpaceLocal,
	"param": SpaceParam, "const": SpaceConst,
}

var opByName = invertOps()

func invertOps() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for o, n := range opNames {
		m[n] = o
	}
	return m
}

// parseMnemonic decodes a dotted mnemonic like "ld.global.cg.u32" into the
// instruction's structured fields.
func parseMnemonic(text string, in *Instr) error {
	parts := strings.Split(text, ".")
	op, ok := opByName[parts[0]]
	if !ok {
		return &Error{Msg: "unknown mnemonic " + parts[0]}
	}
	in.Op = op
	mods := parts[1:]
	if op == OpLog {
		return parseLogMnemonic(mods, in)
	}
	for _, m := range mods {
		switch {
		case m == "uni":
			in.Uni = true
		case m == "volatile":
			in.Volatile = true
		case m == "v2":
			in.Vec = 2
		case m == "v4":
			in.Vec = 4
		case m == "wide":
			in.Wide = true
		case m == "lo":
			in.Lo = true
		case m == "hi":
			in.Hi = true
		case m == "sync" || m == "cta" || m == "gl" || m == "sys" || m == "to":
			in.Level = m
		case m == "rn" || m == "rz" || m == "rm" || m == "rp" || m == "ftz" || m == "approx" || m == "full" || m == "sat":
			// Rounding/saturation modifiers: accepted and ignored.
		default:
			if sp, ok := spaceByName[m]; ok {
				in.Space = sp
				continue
			}
			if co, ok := cacheNameToOp[m]; ok && (op == OpLd || op == OpSt) {
				in.Cache = co
				continue
			}
			if cm, ok := cmpByName[m]; ok && op == OpSetp {
				in.Cmp = cm
				continue
			}
			if am, ok := atomByName[m]; ok && (op == OpAtom || op == OpRed) {
				// Ambiguity: "add"/"min"/"max"/"and"/"or"/"xor" are also
				// type-free modifiers only for atomics, where they bind to
				// the atomic op the first time.
				if in.Atom == AtomNone {
					in.Atom = am
					continue
				}
			}
			if t, ok := typeByName["."+m]; ok {
				if in.Type == TypeNone {
					in.Type = t
				} else if in.Src == TypeNone {
					// Second type: cvt's source type.
					in.Src = t
				}
				continue
			}
			return &Error{Msg: "unknown modifier ." + m + " on " + parts[0]}
		}
	}
	return nil
}

var cacheNameToOp = invertCache()

func invertCache() map[string]CacheOp {
	m := make(map[string]CacheOp, len(cacheNames))
	for c, n := range cacheNames {
		m[n] = c
	}
	return m
}

// parseLogMnemonic decodes `_log.<kind>[.<space>][.sN]`.
func parseLogMnemonic(mods []string, in *Instr) error {
	if len(mods) == 0 {
		return &Error{Msg: "_log requires a kind"}
	}
	k, ok := logKindByName[mods[0]]
	if !ok {
		return &Error{Msg: "unknown _log kind " + mods[0]}
	}
	in.LogK = k
	for _, m := range mods[1:] {
		if sp, ok := spaceByName[m]; ok {
			in.Space = sp
			continue
		}
		if strings.HasPrefix(m, "sz") {
			n, err := strconv.Atoi(m[2:])
			if err != nil {
				return &Error{Msg: "bad _log size " + m}
			}
			in.AccSz = n
			continue
		}
		return &Error{Msg: "unknown _log modifier ." + m}
	}
	return nil
}
