package ptvc

import (
	"math/rand"
	"testing"

	"barracuda/internal/vc"
)

// Test geometry: 2 blocks x 2 warps x 4 lanes = 16 threads.
var geo = Geometry{WarpSize: 4, BlockSize: 8, Blocks: 2}

const fullMask4 = 0xF

func TestGeometryMapping(t *testing.T) {
	if geo.WarpsPerBlock() != 2 || geo.Threads() != 16 {
		t.Fatalf("geometry derived values wrong: %+v", geo)
	}
	for tid := 0; tid < 16; tid++ {
		u := vc.TID(tid)
		w := geo.WarpOf(u)
		l := geo.LaneOf(u)
		if geo.TIDOf(w, l) != u {
			t.Errorf("TIDOf(WarpOf, LaneOf) != id for %d: warp %d lane %d", tid, w, l)
		}
		if geo.BlockOf(u) != tid/8 {
			t.Errorf("BlockOf(%d) = %d", tid, geo.BlockOf(u))
		}
	}
	if geo.BlockOfWarp(3) != 1 || geo.BlockOfWarp(0) != 0 {
		t.Error("BlockOfWarp wrong")
	}
}

func TestInitialGroupConverged(t *testing.T) {
	g := NewGroup(geo, 0, fullMask4)
	if g.Format() != Converged {
		t.Errorf("format = %v, want CONVERGED", g.Format())
	}
	if g.L != 1 || g.B != 0 {
		t.Errorf("initial clocks L=%d B=%d", g.L, g.B)
	}
	// Fresh threads have seen nothing.
	if c := g.ClockOf(5); c != 0 { // other warp, same block
		t.Errorf("ClockOf(other warp) = %d, want 0", c)
	}
	if c := g.ClockOf(9); c != 0 { // other block
		t.Errorf("ClockOf(other block) = %d, want 0", c)
	}
	// Active mates: L-1 = 0 (concurrent at the first instruction).
	if c := g.ClockOf(1); c != 0 {
		t.Errorf("ClockOf(mate) = %d, want 0", c)
	}
}

func TestEndInstrOrdersWarp(t *testing.T) {
	g := NewGroup(geo, 0, fullMask4)
	e0 := g.Epoch(0) // lane 0's epoch at instruction 1
	// Concurrent with mates before endi.
	if g.EpochOrdered(e0) {
		t.Error("mate epoch ordered before endi (intra-warp race must be detectable)")
	}
	g.EndInstr()
	if !g.EpochOrdered(e0) {
		t.Error("mate epoch not ordered after endi")
	}
	if g.L != 2 {
		t.Errorf("L = %d after endi", g.L)
	}
}

func TestSplitFormats(t *testing.T) {
	g := NewGroup(geo, 0, fullMask4)
	g.EndInstr() // L=2
	first, second := g.Split(0b0011)
	if first.Format() != Diverged || second.Format() != Diverged {
		t.Errorf("split formats = %v / %v, want DIVERGED", first.Format(), second.Format())
	}
	if first.Mask != 0b0011 || second.Mask != 0b1100 {
		t.Errorf("split masks %#x / %#x", first.Mask, second.Mask)
	}
	if first.L != 3 || second.L != 3 {
		t.Errorf("child clocks %d / %d, want 3", first.L, second.L)
	}
	// Each child sees the sibling frozen at L-1 = 1.
	if c := first.ClockOf(2); c != 1 {
		t.Errorf("first path's view of sibling lane = %d, want 1", c)
	}
	// Nested split of the first path -> per-lane vector.
	inner1, inner2 := first.Split(0b0001)
	if inner1.Format() != NestedDiverged {
		t.Errorf("nested split format = %v, want NESTEDDIVERGED", inner1.Format())
	}
	// inner1 sees lane 1 (sibling at inner split) at first.L-1 = 2 and
	// lanes 2,3 (outer siblings) still at 1.
	if c := inner1.ClockOf(1); c != 2 {
		t.Errorf("inner view of inner sibling = %d, want 2", c)
	}
	if c := inner1.ClockOf(2); c != 1 {
		t.Errorf("inner view of outer sibling = %d, want 1", c)
	}
	_ = inner2
}

func TestMergeReconverges(t *testing.T) {
	g := NewGroup(geo, 0, fullMask4)
	g.EndInstr() // L=2
	first, second := g.Split(0b0011)
	e1 := first.Epoch(0)
	first.EndInstr() // first path runs 2 instructions
	first.EndInstr()
	e2 := second.Epoch(2)
	second.EndInstr()
	// Branch paths are concurrent: neither epoch ordered in the other.
	if second.EpochOrdered(e1) {
		t.Error("then-path epoch ordered in else path (branch ordering race missed)")
	}
	if first.EpochOrdered(e2) {
		t.Error("else-path epoch ordered in then path")
	}
	g.Merge(first, second)
	if g.Format() != Converged {
		t.Errorf("post-merge format = %v, want CONVERGED", g.Format())
	}
	if !g.EpochOrdered(e1) || !g.EpochOrdered(e2) {
		t.Error("path epochs not ordered after reconvergence")
	}
	if g.L <= first.L && g.L <= second.L {
		t.Errorf("merged clock %d not past paths %d/%d", g.L, first.L, second.L)
	}
}

func TestBarrierOrdersBlock(t *testing.T) {
	g0 := NewGroup(geo, 0, fullMask4)
	g1 := NewGroup(geo, 1, fullMask4)
	g0.EndInstr()
	g0.EndInstr() // warp 0 at L=3
	g1.EndInstr() // warp 1 at L=2
	e0 := g0.Epoch(1)
	e1 := g1.Epoch(3)
	// Cross-warp: concurrent before the barrier.
	if g1.EpochOrdered(e0) || g0.EpochOrdered(e1) {
		t.Error("cross-warp epochs ordered before barrier")
	}
	m := g0.L
	if g1.L > m {
		m = g1.L
	}
	MergeExt([]*Group{g0, g1})
	g0.Barrier(m)
	g1.Barrier(m)
	if !g1.EpochOrdered(e0) || !g0.EpochOrdered(e1) {
		t.Error("cross-warp epochs not ordered after barrier")
	}
	if g0.L != m+1 || g1.L != m+1 || g0.B != m {
		t.Errorf("post-barrier clocks L=%d/%d B=%d", g0.L, g1.L, g0.B)
	}
	// Post-barrier epochs are NOT ordered into the other warp.
	e0post := g0.Epoch(0)
	if g1.EpochOrdered(e0post) {
		t.Error("post-barrier epoch wrongly ordered")
	}
}

func TestReleaseAcquireCrossBlock(t *testing.T) {
	rel := NewGroup(geo, 0, fullMask4) // block 0
	acq := NewGroup(geo, 2, fullMask4) // block 1
	rel.EndInstr()
	rel.EndInstr()
	eRel := rel.Epoch(2)
	rel.EndInstr() // epoch now in the releasing thread's past
	s := rel.Snapshot(2)
	rel.EndInstr() // the endi following the release instruction
	if acq.EpochOrdered(eRel) {
		t.Error("cross-block epoch ordered before acquire")
	}
	acq.Acquire(s)
	if acq.Format() != SparseVC {
		t.Errorf("post-acquire format = %v, want SPARSEVC", acq.Format())
	}
	if !acq.EpochOrdered(eRel) {
		t.Error("released epoch not ordered after acquire")
	}
	// Epochs the releaser creates after the release stay concurrent.
	ePost := rel.Epoch(2)
	if acq.EpochOrdered(ePost) {
		t.Error("post-release epoch wrongly ordered")
	}
}

func TestAcquireAbsorbsBlockClock(t *testing.T) {
	rel := NewGroup(geo, 0, fullMask4)
	peer := NewGroup(geo, 1, fullMask4) // same block as rel
	// Barrier in block 0 gives rel a block clock.
	peer.EndInstr()
	m := peer.L
	if rel.L > m {
		m = rel.L
	}
	ePeer := peer.Epoch(0)
	rel.Barrier(m)
	peer.Barrier(m)
	s := rel.Snapshot(0)
	// An acquirer in block 1 must learn about peer (via rel's block
	// clock) transitively.
	acq := NewGroup(geo, 3, fullMask4)
	acq.Acquire(s)
	if !acq.EpochOrdered(ePeer) {
		t.Error("block-clock knowledge not transferred through release/acquire")
	}
}

func TestSnapshotClockOfAndToVC(t *testing.T) {
	g := NewGroup(geo, 0, fullMask4)
	g.EndInstr()
	g.EndInstr() // L=3
	s := g.Snapshot(1)
	if c := s.ClockOf(geo.TIDOf(0, 1)); c != 3 {
		t.Errorf("snapshot self = %d, want 3", c)
	}
	if c := s.ClockOf(geo.TIDOf(0, 0)); c != 2 {
		t.Errorf("snapshot mate = %d, want 2", c)
	}
	if c := s.ClockOf(9); c != 0 {
		t.Errorf("snapshot other block = %d, want 0", c)
	}
	v := s.ToVC()
	for tid := 0; tid < 16; tid++ {
		if v.Get(vc.TID(tid)) != s.ClockOf(vc.TID(tid)) {
			t.Errorf("ToVC mismatch at %d", tid)
		}
	}
}

func TestCompressDropsRedundantExt(t *testing.T) {
	g := NewGroup(geo, 0, fullMask4)
	other := NewGroup(geo, 2, fullMask4)
	other.EndInstr()
	s := other.Snapshot(0)
	g.Acquire(s)
	if g.Format() != SparseVC {
		t.Fatalf("format = %v", g.Format())
	}
	// A barrier whose clock dominates... cannot subsume a foreign-block
	// entry, but merging with a path that has nothing keeps ext.
	// Acquiring an older snapshot of the same thread must not grow ext.
	before := len(g.ext.threads)
	g.Acquire(s)
	if len(g.ext.threads) != before {
		t.Errorf("re-acquire grew ext: %d -> %d", before, len(g.ext.threads))
	}
}

func TestFormatString(t *testing.T) {
	names := map[Format]string{
		Converged: "CONVERGED", Diverged: "DIVERGED",
		NestedDiverged: "NESTEDDIVERGED", SparseVC: "SPARSEVC",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d.String() = %q", int(f), f.String())
		}
	}
}

// --- Property test: order-equivalence with the formal full-VC rules ----

// refModel implements the paper's Figure 2/3 rules directly with full
// vector clocks, one per thread.
type refModel struct {
	clocks []*vc.VC
}

func newRefModel(n int) *refModel {
	m := &refModel{clocks: make([]*vc.VC, n)}
	for i := range m.clocks {
		m.clocks[i] = vc.New()
		m.clocks[i].Inc(vc.TID(i))
	}
	return m
}

// joinFork implements the barrier-style join-and-fork shared by ENDINSN,
// IF, ELSE/FI and BAR: vc = ⊔ C_t over the set, then C_t = inc_t(vc).
func (m *refModel) joinFork(tids []vc.TID) {
	j := vc.New()
	for _, t := range tids {
		j.Join(m.clocks[t])
	}
	for _, t := range tids {
		c := j.Copy()
		c.Inc(t)
		m.clocks[t] = c
	}
}

// mark is an epoch captured simultaneously in both models.
type mark struct {
	t   vc.TID
	ref vc.Clock // the thread's own clock in the reference model
	cmp vc.Epoch // the compressed model's epoch
}

// driver keeps the two models in lockstep over a random schedule.
type driver struct {
	t      *testing.T
	r      *rand.Rand
	ref    *refModel
	stacks [][]*Group // per warp: mirror of the SIMT stack (top = active)
	// pending second paths per warp (nil once the else path started)
	second    []*Group
	firstDone []*Group // completed first path, retained for the merge
	recon     []*Group // reconvergence continuation (bottom group at split)
	marks     []mark
	slot      *ptSlot // one synchronization location
}

type ptSlot struct {
	snap *Snapshot
	ref  *vc.VC
}

func newDriver(t *testing.T, seed int64) *driver {
	d := &driver{
		t:         t,
		r:         rand.New(rand.NewSource(seed)),
		ref:       newRefModel(geo.Threads()),
		stacks:    make([][]*Group, 4),
		second:    make([]*Group, 4),
		firstDone: make([]*Group, 4),
		recon:     make([]*Group, 4),
		slot:      &ptSlot{ref: vc.New()},
	}
	for w := 0; w < 4; w++ {
		d.stacks[w] = []*Group{NewGroup(geo, w, fullMask4)}
	}
	return d
}

func (d *driver) top(w int) *Group { return d.stacks[w][len(d.stacks[w])-1] }

func (d *driver) activeTIDs(g *Group) []vc.TID {
	var out []vc.TID
	for lane := 0; lane < 4; lane++ {
		if g.Mask&(1<<uint(lane)) != 0 {
			out = append(out, geo.TIDOf(g.Warp, lane))
		}
	}
	return out
}

func (d *driver) step() {
	w := d.r.Intn(4)
	g := d.top(w)
	switch op := d.r.Intn(10); {
	case op < 4: // endi
		d.ref.joinFork(d.activeTIDs(g))
		g.EndInstr()
	case op < 5 && len(d.stacks[w]) == 1 && popcount(g.Mask) >= 2: // split
		// Choose a proper nonempty submask.
		var firstMask uint32
		for firstMask == 0 || firstMask == g.Mask {
			firstMask = g.Mask & uint32(d.r.Intn(16))
		}
		first, second := g.Split(firstMask)
		d.recon[w] = g
		d.second[w] = second
		d.stacks[w] = append(d.stacks[w], first)
		d.ref.joinFork(d.activeTIDs(first)) // IF joins/forks the first path
	case op < 6 && len(d.stacks[w]) == 2: // else or fi
		if d.second[w] != nil {
			// else: first path completes; the second path begins.
			d.firstDone[w] = d.stacks[w][1]
			d.stacks[w][1] = d.second[w]
			d.second[w] = nil
			d.ref.joinFork(d.activeTIDs(d.stacks[w][1]))
		} else {
			// fi: both paths complete; reconverge.
			second := d.stacks[w][1]
			d.stacks[w] = d.stacks[w][:1]
			rec := d.recon[w]
			rec.Merge(d.firstDone[w], second)
			d.firstDone[w] = nil
			d.ref.joinFork(d.activeTIDs(rec))
		}
	case op < 7: // barrier over a block, only when both warps converged
		blk := d.r.Intn(2)
		w0, w1 := blk*2, blk*2+1
		if len(d.stacks[w0]) != 1 || len(d.stacks[w1]) != 1 {
			return
		}
		g0, g1 := d.top(w0), d.top(w1)
		m := g0.L
		if g1.L > m {
			m = g1.L
		}
		MergeExt([]*Group{g0, g1})
		g0.Barrier(m)
		g1.Barrier(m)
		var tids []vc.TID
		tids = append(tids, d.activeTIDs(g0)...)
		tids = append(tids, d.activeTIDs(g1)...)
		d.ref.joinFork(tids)
	case op < 8: // release from a random active lane
		lanes := d.activeTIDs(g)
		tid := lanes[d.r.Intn(len(lanes))]
		d.slot.snap = g.Snapshot(geo.LaneOf(tid))
		d.slot.ref = d.ref.clocks[tid].Copy()
		d.ref.joinFork(d.activeTIDs(g))
		g.EndInstr()
	case op < 9 && d.slot.snap != nil: // acquire
		g.Acquire(d.slot.snap)
		for _, tid := range d.activeTIDs(g) {
			d.ref.clocks[tid].Join(d.slot.ref)
		}
	default: // record a mark
		lanes := d.activeTIDs(g)
		tid := lanes[d.r.Intn(len(lanes))]
		d.marks = append(d.marks, mark{
			t:   tid,
			ref: d.ref.clocks[tid].Get(tid),
			cmp: g.Epoch(geo.LaneOf(tid)),
		})
	}
}

// check asserts that every recorded mark has identical ordering relative
// to every currently-active thread in both models.
func (d *driver) check(step int) {
	for _, mk := range d.marks {
		for w := 0; w < 4; w++ {
			g := d.top(w)
			for lane := 0; lane < 4; lane++ {
				if g.Mask&(1<<uint(lane)) == 0 {
					continue
				}
				tid := geo.TIDOf(g.Warp, lane)
				if tid == mk.t {
					continue // self-ordering is trivial
				}
				refOrdered := mk.ref <= d.ref.clocks[tid].Get(mk.t)
				cmpOrdered := g.EpochOrdered(mk.cmp)
				if refOrdered != cmpOrdered {
					d.t.Fatalf("step %d: ordering disagreement: mark %v@%d vs thread %d: ref=%v cmp=%v\n group=%v",
						step, mk.ref, mk.t, tid, refOrdered, cmpOrdered, g)
				}
			}
		}
	}
}

func popcount(m uint32) int {
	n := 0
	for m != 0 {
		n += int(m & 1)
		m >>= 1
	}
	return n
}

func TestPropOrderEquivalenceWithFormalRules(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		d := newDriver(t, seed)
		for step := 0; step < 300; step++ {
			d.step()
			if step%10 == 0 {
				d.check(step)
			}
		}
		d.check(300)
	}
}
