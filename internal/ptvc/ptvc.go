// Package ptvc implements BARRACUDA's lossless per-thread vector-clock
// (PTVC) compression (§4.3.1, Figure 7).
//
// A conventional race detector keeps one vector clock per thread — O(n²)
// space, crippling for GPU kernels with a million threads. BARRACUDA
// exploits the massive redundancy induced by lockstep warp execution:
// threads in a warp almost always have identical clock structure, so PTVCs
// are managed at warp granularity in one of four formats:
//
//	CONVERGED        all lanes in lockstep: {active mask, local clock,
//	                 block clock}
//	DIVERGED         non-nested control flow: adds a scalar warp clock for
//	                 the inactive lanes
//	NESTEDDIVERGED   nested control flow: the warp clock generalises to a
//	                 per-lane vector
//	SPARSEVC         arbitrary point-to-point synchronization: adds an
//	                 unordered map from threads/blocks to clocks
//
// A Group is the shared clock state of a set of lanes executing in
// lockstep; the race detector keeps a stack of Groups per warp, mirroring
// the GPU's reconvergence stack. The represented full vector clock of an
// active thread t is
//
//	C_t(t)  = L                 (the local clock)
//	C_t(u)  = L-1               for active lane-mates u ≠ t
//	C_t(v)  = W or Inact[lane]  for inactive lanes of the same warp
//	C_t(r)  = B                 for same-block threads outside the warp
//	C_t(s)  = Ext lookup        for everything else (0 by default)
//
// all joined with the sparse Ext overlay. The compression is lossless:
// every operation below is a clock relabeling that preserves the
// happens-before order of the formal rules in the paper's Figures 2–3
// (property-tested against a full-vector-clock reference in package core).
package ptvc

import (
	"fmt"

	"barracuda/internal/vc"
)

// Format identifies the storage format a Group is currently using.
type Format int

// The four PTVC formats of Figure 7.
const (
	Converged Format = iota
	Diverged
	NestedDiverged
	SparseVC
)

func (f Format) String() string {
	switch f {
	case Converged:
		return "CONVERGED"
	case Diverged:
		return "DIVERGED"
	case NestedDiverged:
		return "NESTEDDIVERGED"
	case SparseVC:
		return "SPARSEVC"
	}
	return "?"
}

// Geometry maps between global thread ids and the grid hierarchy.
type Geometry struct {
	WarpSize  int
	BlockSize int // threads per block
	Blocks    int
}

// WarpsPerBlock returns the number of warps in each block.
func (g Geometry) WarpsPerBlock() int {
	return (g.BlockSize + g.WarpSize - 1) / g.WarpSize
}

// Threads returns the total thread count.
func (g Geometry) Threads() int { return g.BlockSize * g.Blocks }

// BlockOf returns the block index of a thread.
func (g Geometry) BlockOf(t vc.TID) int { return int(t) / g.BlockSize }

// WarpOf returns the global warp index of a thread.
func (g Geometry) WarpOf(t vc.TID) int {
	b := g.BlockOf(t)
	lin := int(t) - b*g.BlockSize
	return b*g.WarpsPerBlock() + lin/g.WarpSize
}

// LaneOf returns the lane index of a thread within its warp.
func (g Geometry) LaneOf(t vc.TID) int {
	lin := int(t) % g.BlockSize
	return lin % g.WarpSize
}

// TIDOf returns the thread id of (global warp, lane).
func (g Geometry) TIDOf(warp, lane int) vc.TID {
	wpb := g.WarpsPerBlock()
	b := warp / wpb
	return vc.TID(b*g.BlockSize + (warp%wpb)*g.WarpSize + lane)
}

// BlockOfWarp returns the block index of a global warp.
func (g Geometry) BlockOfWarp(warp int) int { return warp / g.WarpsPerBlock() }

// ext is the sparse overlay acquired through point-to-point
// synchronization: per-thread entries plus per-foreign-block entries.
type ext struct {
	threads map[vc.TID]vc.Clock
	blocks  map[int]vc.Clock
}

func (e *ext) empty() bool {
	return e == nil || (len(e.threads) == 0 && len(e.blocks) == 0)
}

func (e *ext) clone() *ext {
	if e.empty() {
		return nil
	}
	c := &ext{}
	if len(e.threads) > 0 {
		c.threads = make(map[vc.TID]vc.Clock, len(e.threads))
		for t, cl := range e.threads {
			c.threads[t] = cl
		}
	}
	if len(e.blocks) > 0 {
		c.blocks = make(map[int]vc.Clock, len(e.blocks))
		for b, cl := range e.blocks {
			c.blocks[b] = cl
		}
	}
	return c
}

func (e *ext) thread(t vc.TID) vc.Clock {
	if e == nil {
		return 0
	}
	return e.threads[t]
}

func (e *ext) block(b int) vc.Clock {
	if e == nil {
		return 0
	}
	return e.blocks[b]
}

func (e *ext) setThread(t vc.TID, c vc.Clock) *ext {
	if e == nil {
		e = &ext{}
	}
	if e.threads == nil {
		e.threads = make(map[vc.TID]vc.Clock, 4)
	}
	if c > e.threads[t] {
		e.threads[t] = c
	}
	return e
}

func (e *ext) setBlock(b int, c vc.Clock) *ext {
	if e == nil {
		e = &ext{}
	}
	if e.blocks == nil {
		e.blocks = make(map[int]vc.Clock, 2)
	}
	if c > e.blocks[b] {
		e.blocks[b] = c
	}
	return e
}

// join merges o into e (component-wise max), returning the result.
func (e *ext) join(o *ext) *ext {
	if o.empty() {
		return e
	}
	for t, c := range o.threads {
		e = e.setThread(t, c)
	}
	for b, c := range o.blocks {
		e = e.setBlock(b, c)
	}
	return e
}

// Group is the shared clock state of a set of warp lanes in lockstep: one
// SIMT-stack path. The zero value is not useful; use NewGroup.
type Group struct {
	Geo     Geometry
	Warp    int    // global warp index
	BaseTID vc.TID // thread id of lane 0

	Mask     uint32 // lanes this group represents (currently active set)
	FullMask uint32 // lanes populated in the warp

	L vc.Clock // local clock of the active lanes
	B vc.Clock // block clock (same-block threads outside the warp)

	// Inactive-lane clocks: when inact is nil, every lane outside Mask
	// (but inside FullMask) has clock W (DIVERGED); otherwise per-lane
	// values (NESTEDDIVERGED).
	W     vc.Clock
	inact *[32]vc.Clock

	ext *ext
}

// NewGroup creates the initial CONVERGED group of a warp: each thread
// starts with inc_t(⊥), i.e. local clock 1 and everything else 0.
func NewGroup(geo Geometry, warp int, fullMask uint32) *Group {
	return &Group{
		Geo:      geo,
		Warp:     warp,
		BaseTID:  geo.TIDOf(warp, 0),
		Mask:     fullMask,
		FullMask: fullMask,
		L:        1,
	}
}

// Block returns the block index of the group's warp.
func (g *Group) Block() int { return g.Geo.BlockOfWarp(g.Warp) }

// Format reports the current storage format (Figure 7).
func (g *Group) Format() Format {
	switch {
	case !g.ext.empty():
		return SparseVC
	case g.inact != nil:
		return NestedDiverged
	case g.Mask != g.FullMask:
		return Diverged
	default:
		return Converged
	}
}

// Epoch returns E(t) = C_t(t)@t for the thread at the given lane.
func (g *Group) Epoch(lane int) vc.Epoch {
	return vc.Epoch{T: g.Geo.TIDOf(g.Warp, lane), C: g.L}
}

// inactClock returns the clock this group holds for an inactive lane.
func (g *Group) inactClock(lane int) vc.Clock {
	if g.inact != nil {
		return g.inact[lane]
	}
	return g.W
}

// ClockOf returns C_t(u) for any active thread t of this group and any
// thread u ≠ t. (All active lanes share the same view of other threads;
// only the self-entry differs, which Epoch covers.)
func (g *Group) ClockOf(u vc.TID) vc.Clock {
	var structural vc.Clock
	uw := g.Geo.WarpOf(u)
	switch {
	case uw == g.Warp:
		lane := g.Geo.LaneOf(u)
		if g.Mask&(1<<uint(lane)) != 0 {
			structural = g.L - 1 // active lane-mate
		} else {
			structural = g.inactClock(lane)
		}
	case g.Geo.BlockOf(u) == g.Block():
		structural = g.B
	default:
		structural = g.ext.block(g.Geo.BlockOf(u))
	}
	if t := g.ext.thread(u); t > structural {
		return t
	}
	return structural
}

// EpochOrdered reports whether epoch c@u ⪯ C_t for the active lanes of
// this group, i.e. c ≤ C_t(u). The self lane (if u is an active lane of
// this group) uses the local clock.
func (g *Group) EpochOrdered(e vc.Epoch) bool {
	if e.C == 0 {
		return true
	}
	if g.Geo.WarpOf(e.T) == g.Warp {
		lane := g.Geo.LaneOf(e.T)
		if g.Mask&(1<<uint(lane)) != 0 {
			// An active lane's own clock is L; its mates see L-1. An
			// epoch c@u with c == L is the lane's *current* epoch and
			// is ordered only for u itself — callers handle the
			// same-lane case; for mates it must compare against L-1.
			return e.C <= g.L-1
		}
	}
	return e.C <= g.ClockOf(e.T)
}

// EndInstr implements the ENDINSN join-and-fork for the group: because all
// active lanes share the structure, joining them and incrementing each
// lane's own entry is a single increment of the local clock. This O(1)
// step is the heart of the warp-granularity optimization.
func (g *Group) EndInstr() { g.L++ }

// Split implements the IF rule: the group's active set splits into the
// first- and second-executing paths. The receiver becomes the
// reconvergence continuation; the two returned groups carry clocks
// L+1 with the lanes of the sibling path frozen at L-1.
func (g *Group) Split(firstMask uint32) (first, second *Group) {
	secondMask := g.Mask &^ firstMask
	mk := func(mask uint32) *Group {
		child := &Group{
			Geo:      g.Geo,
			Warp:     g.Warp,
			BaseTID:  g.BaseTID,
			Mask:     mask,
			FullMask: g.FullMask,
			L:        g.L + 1,
			B:        g.B,
			ext:      g.ext.clone(),
		}
		// Lanes outside `mask`: sibling-path lanes froze at L-1; lanes
		// that were already inactive keep their previous clocks. Use a
		// scalar W when all inactive clocks agree, else the per-lane
		// vector (the DIVERGED → NESTEDDIVERGED transition).
		var vec [32]vc.Clock
		var first vc.Clock
		got, uniform := false, true
		for lane := 0; lane < 32; lane++ {
			bit := uint32(1) << uint(lane)
			if g.FullMask&bit == 0 || mask&bit != 0 {
				continue
			}
			var v vc.Clock
			if g.Mask&bit != 0 {
				v = g.L - 1 // sibling path, frozen at the split
			} else {
				v = g.inactClock(lane)
			}
			vec[lane] = v
			if !got {
				first, got = v, true
			} else if v != first {
				uniform = false
			}
		}
		if uniform {
			child.W = first
		} else {
			vv := vec
			child.inact = &vv
		}
		return child
	}
	return mk(firstMask), mk(secondMask)
}

// Merge implements the FI reconvergence: the receiver (the reconvergence
// continuation pushed aside by Split) absorbs both completed paths. All
// merged lanes jump to max(L_first, L_second)+1 — a clock relabeling with
// the same order structure as the formal join-and-fork.
func (g *Group) Merge(first, second *Group) {
	m := first.L
	if second.L > m {
		m = second.L
	}
	if g.L > m {
		m = g.L
	}
	g.L = m + 1
	if first.B > g.B {
		g.B = first.B
	}
	if second.B > g.B {
		g.B = second.B
	}
	g.ext = g.ext.join(first.ext).join(second.ext)
	g.compress()
}

// ElseJoin merges a completed first path's knowledge that is not captured
// by the stack structure (acquired Ext entries do NOT transfer: the else
// path is concurrent with the then path). Nothing to do — present for
// symmetry and documentation.
func (g *Group) ElseJoin(_ *Group) {}

// Barrier implements the block-wide BAR rule for this warp: every thread
// in the block synchronizes; m is the maximum local clock across the
// block's warps. All lanes jump to m+1 and the block clock becomes m.
func (g *Group) Barrier(m vc.Clock) {
	g.B = m
	g.L = m + 1
	// The whole block is converged at the barrier, so warp-internal
	// divergence history is subsumed by the block clock.
	g.W = m
	g.inact = nil
	g.compress()
}

// compress drops redundant representation pieces (the "check for
// opportunities to use a simpler PTVC format" step).
func (g *Group) compress() {
	// A per-lane vector whose populated entries are all equal collapses
	// to the scalar W.
	if g.inact != nil {
		var first vc.Clock
		got := false
		uniform := true
		for lane := 0; lane < 32; lane++ {
			bit := uint32(1) << uint(lane)
			if g.FullMask&bit == 0 || g.Mask&bit != 0 {
				continue
			}
			if !got {
				first = g.inact[lane]
				got = true
			} else if g.inact[lane] != first {
				uniform = false
				break
			}
		}
		if uniform {
			g.inact = nil
			g.W = first
		}
	}
	// Ext entries subsumed by the structure can be dropped.
	if g.ext != nil {
		for t, c := range g.ext.threads {
			var structural vc.Clock
			uw := g.Geo.WarpOf(t)
			switch {
			case uw == g.Warp:
				lane := g.Geo.LaneOf(t)
				if g.Mask&(1<<uint(lane)) != 0 {
					structural = g.L - 1
				} else {
					structural = g.inactClock(lane)
				}
			case g.Geo.BlockOf(t) == g.Block():
				structural = g.B
			default:
				structural = g.ext.block(g.Geo.BlockOf(t))
			}
			if c <= structural {
				delete(g.ext.threads, t)
			}
		}
		if g.ext.empty() {
			g.ext = nil
		}
	}
}

// Snapshot materialises the compressed vector clock C_t of the thread at
// the given active lane, for storing into a synchronization location
// (the RELBLOCK/RELGLOBAL rules). The snapshot stays compressed.
func (g *Group) Snapshot(lane int) *Snapshot {
	s := &Snapshot{
		Geo:     g.Geo,
		Warp:    g.Warp,
		BlockID: g.Block(),
		Lane:    lane,
		Mask:    g.Mask,
		Full:    g.FullMask,
		L:       g.L,
		B:       g.B,
		W:       g.W,
		ext:     g.ext.clone(),
	}
	if g.inact != nil {
		vec := *g.inact
		s.inact = &vec
	}
	return s
}

// Acquire joins a released snapshot into the group (the ACQBLOCK /
// ACQGLOBAL join C_t ⊔ S_x[...]), updating the sparse overlay.
func (g *Group) Acquire(s *Snapshot) {
	if s == nil {
		return
	}
	// The releasing lane's own entry.
	g.absorbThread(s.Geo.TIDOf(s.Warp, s.Lane), s.L)
	// Its warp-mates.
	for lane := 0; lane < 32; lane++ {
		bit := uint32(1) << uint(lane)
		if s.Full&bit == 0 || lane == s.Lane {
			continue
		}
		var c vc.Clock
		if s.Mask&bit != 0 {
			c = s.L - 1
		} else if s.inact != nil {
			c = s.inact[lane]
		} else {
			c = s.W
		}
		if c > 0 {
			g.absorbThread(s.Geo.TIDOf(s.Warp, lane), c)
		}
	}
	// Its block clock covers every same-block thread outside its warp.
	if s.B > 0 {
		g.absorbBlock(s.BlockID, s.B)
	}
	// Its own sparse overlay.
	if s.ext != nil {
		for t, c := range s.ext.threads {
			g.absorbThread(t, c)
		}
		for b, c := range s.ext.blocks {
			g.absorbBlock(b, c)
		}
	}
	g.compress()
}

// absorbThread raises C(u) to at least c.
func (g *Group) absorbThread(u vc.TID, c vc.Clock) {
	if c == 0 || c <= g.ClockOf(u) {
		return
	}
	g.ext = g.ext.setThread(u, c)
}

// absorbBlock raises the view of every thread of block b (outside this
// group's warp when b is the group's own block) to at least c.
func (g *Group) absorbBlock(b int, c vc.Clock) {
	if c == 0 {
		return
	}
	if b == g.Block() {
		if c > g.B {
			g.B = c
		}
		return
	}
	if c > g.ext.block(b) {
		g.ext = g.ext.setBlock(b, c)
	}
}

// MergeExt combines the sparse overlays of all groups (the warps of one
// block meeting at a barrier): after a barrier every thread has seen the
// point-to-point synchronization any of its block-mates had seen. Call
// before Barrier.
func MergeExt(groups []*Group) {
	var combined *ext
	for _, g := range groups {
		combined = combined.join(g.ext)
	}
	if combined.empty() {
		return
	}
	for _, g := range groups {
		g.ext = g.ext.join(combined) // join copies entries; no aliasing
	}
}

// String renders the group for debugging.
func (g *Group) String() string {
	return fmt.Sprintf("warp %d %s mask=%#x L=%d W=%d B=%d",
		g.Warp, g.Format(), g.Mask, g.L, g.W, g.B)
}

// Snapshot is a compressed vector clock captured at a release operation;
// it is the value type of the S_x per-block synchronization metadata.
type Snapshot struct {
	Geo     Geometry
	Warp    int
	BlockID int
	Lane    int
	Mask    uint32
	Full    uint32
	L       vc.Clock
	B       vc.Clock
	W       vc.Clock
	inact   *[32]vc.Clock
	ext     *ext
}

// ClockOf returns the snapshot's component for thread u (the materialized
// C_t(u) of the releasing thread t at release time).
func (s *Snapshot) ClockOf(u vc.TID) vc.Clock {
	var structural vc.Clock
	uw := s.Geo.WarpOf(u)
	switch {
	case uw == s.Warp:
		lane := s.Geo.LaneOf(u)
		switch {
		case lane == s.Lane:
			structural = s.L
		case s.Mask&(1<<uint(lane)) != 0:
			structural = s.L - 1
		case s.inact != nil:
			structural = s.inact[lane]
		default:
			structural = s.W
		}
	case s.Geo.BlockOf(u) == s.BlockID:
		structural = s.B
	default:
		if s.ext != nil {
			structural = s.ext.blocks[s.Geo.BlockOf(u)]
		}
	}
	if s.ext != nil {
		if t := s.ext.threads[u]; t > structural {
			return t
		}
	}
	return structural
}

// ToVC expands the snapshot to an explicit sparse vector clock (test and
// diagnostic use; O(threads) — never on the hot path).
func (s *Snapshot) ToVC() *vc.VC {
	out := vc.New()
	for t := 0; t < s.Geo.Threads(); t++ {
		if c := s.ClockOf(vc.TID(t)); c > 0 {
			out.Set(vc.TID(t), c)
		}
	}
	return out
}
