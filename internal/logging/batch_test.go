package logging

import (
	"sync"
	"testing"

	"barracuda/internal/trace"
)

func TestDequeueBatchEmpty(t *testing.T) {
	q := NewQueue(8)
	buf := make([]Record, 4)
	if n := q.DequeueBatch(buf); n != 0 {
		t.Errorf("DequeueBatch on empty queue = %d, want 0", n)
	}
	if n := q.DequeueBatch(nil); n != 0 {
		t.Errorf("DequeueBatch(nil) = %d, want 0", n)
	}
}

func TestDequeueBatchPartial(t *testing.T) {
	q := NewQueue(16)
	for i := 0; i < 5; i++ {
		q.Enqueue(&Record{PC: uint32(i)})
	}
	buf := make([]Record, 8)
	n := q.DequeueBatch(buf)
	if n != 5 {
		t.Fatalf("DequeueBatch = %d, want 5 (partial batch)", n)
	}
	for i := 0; i < n; i++ {
		if buf[i].PC != uint32(i) {
			t.Errorf("record %d has PC %d", i, buf[i].PC)
		}
	}
	if n := q.DequeueBatch(buf); n != 0 {
		t.Errorf("second DequeueBatch = %d, want 0", n)
	}
}

func TestDequeueBatchSmallerThanPending(t *testing.T) {
	q := NewQueue(16)
	for i := 0; i < 10; i++ {
		q.Enqueue(&Record{PC: uint32(i)})
	}
	buf := make([]Record, 4)
	var got []uint32
	for {
		n := q.DequeueBatch(buf)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			got = append(got, buf[i].PC)
		}
	}
	if len(got) != 10 {
		t.Fatalf("drained %d records, want 10", len(got))
	}
	for i, pc := range got {
		if pc != uint32(i) {
			t.Errorf("record %d has PC %d (order broken across batches)", i, pc)
		}
	}
}

func TestDequeueBatchWrapAround(t *testing.T) {
	q := NewQueue(4) // capacity 4: batches must cross the ring boundary
	buf := make([]Record, 4)
	next := uint32(0)
	for round := 0; round < 8; round++ {
		// Stagger fills so the read head sits at every phase of the ring.
		fill := 3
		for i := 0; i < fill; i++ {
			q.Enqueue(&Record{PC: next + uint32(i)})
		}
		n := q.DequeueBatch(buf)
		if n != fill {
			t.Fatalf("round %d: DequeueBatch = %d, want %d", round, n, fill)
		}
		for i := 0; i < n; i++ {
			if buf[i].PC != next+uint32(i) {
				t.Fatalf("round %d: record %d has PC %d, want %d (wraparound corrupted order)",
					round, i, buf[i].PC, next+uint32(i))
			}
		}
		next += uint32(fill)
	}
	if q.Pending() != 0 {
		t.Errorf("Pending = %d after drain", q.Pending())
	}
}

func TestDequeueBatchLargerThanCap(t *testing.T) {
	q := NewQueue(4)
	for i := 0; i < 4; i++ {
		q.Enqueue(&Record{PC: uint32(i)})
	}
	// A batch buffer larger than the whole ring must cap at what is
	// committed, not read stale or unpublished slots.
	buf := make([]Record, 3*q.Cap())
	n := q.DequeueBatch(buf)
	if n != 4 {
		t.Fatalf("DequeueBatch = %d, want 4 (full ring)", n)
	}
	for i := 0; i < n; i++ {
		if buf[i].PC != uint32(i) {
			t.Errorf("record %d has PC %d", i, buf[i].PC)
		}
	}
}

func TestDequeueBatchInterleavedOpEnd(t *testing.T) {
	q := NewQueue(16)
	q.Enqueue(&Record{PC: 1, Op: trace.OpWrite})
	q.Enqueue(&Record{PC: 2, Op: trace.OpWrite})
	q.Enqueue(&Record{Op: trace.OpEnd})
	buf := make([]Record, 8)
	n := q.DequeueBatch(buf)
	if n != 3 {
		t.Fatalf("DequeueBatch = %d, want 3 (OpEnd travels inside the batch)", n)
	}
	if buf[0].Op != trace.OpWrite || buf[1].Op != trace.OpWrite || buf[2].Op != trace.OpEnd {
		t.Errorf("ops = %v %v %v, want write write end", buf[0].Op, buf[1].Op, buf[2].Op)
	}
}

func TestDequeueBatchMixedWithTryDequeue(t *testing.T) {
	q := NewQueue(8)
	for i := 0; i < 6; i++ {
		q.Enqueue(&Record{PC: uint32(i)})
	}
	var r Record
	if !q.TryDequeue(&r) || r.PC != 0 {
		t.Fatalf("TryDequeue = %v PC=%d", r, r.PC)
	}
	buf := make([]Record, 8)
	n := q.DequeueBatch(buf)
	if n != 5 {
		t.Fatalf("DequeueBatch after TryDequeue = %d, want 5", n)
	}
	for i := 0; i < n; i++ {
		if buf[i].PC != uint32(i+1) {
			t.Errorf("record %d has PC %d, want %d", i, buf[i].PC, i+1)
		}
	}
}

func TestDequeueBatchConcurrentProducers(t *testing.T) {
	q := NewQueue(64)
	const producers = 4
	const perProducer = 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(&Record{Warp: uint32(p), PC: uint32(i)})
			}
		}(p)
	}
	next := make([]uint32, producers)
	buf := make([]Record, 32)
	var bo Backoff
	for drained := 0; drained < producers*perProducer; {
		n := q.DequeueBatch(buf)
		if n == 0 {
			bo.Wait()
			continue
		}
		bo.Reset()
		for i := 0; i < n; i++ {
			r := &buf[i]
			if r.PC != next[r.Warp] {
				t.Fatalf("producer %d out of order: got PC %d, want %d", r.Warp, r.PC, next[r.Warp])
			}
			next[r.Warp]++
		}
		drained += n
	}
	wg.Wait()
	if q.Pending() != 0 {
		t.Errorf("Pending = %d after drain", q.Pending())
	}
}

func TestBackoffResets(t *testing.T) {
	var bo Backoff
	for i := 0; i < backoffSpins+backoffYields; i++ {
		bo.Wait() // spin/yield phases only; must not sleep
	}
	if bo.n != backoffSpins+backoffYields {
		t.Fatalf("backoff count = %d", bo.n)
	}
	bo.Reset()
	if bo.n != 0 {
		t.Errorf("Reset did not zero the counter")
	}
}
