// Package logging implements the device-to-host event channel of
// BARRACUDA (§4.2, Figure 6): fixed-size warp-level records carried by
// lock-free ring queues whose contents are tracked by three monotonically
// increasing virtual indices — a write head (next entry available for
// writing by the GPU-side instrumentation), a commit index (entries
// transferred and visible to the host), and a read head (next entry to be
// consumed by the host race detector). Virtual indices are mapped to
// physical slots by modulus with the queue size.
//
// Multiple queues are used (the paper finds ~1.1–1.5 queues per SM
// optimal); each thread block sends all of its events to a single queue,
// which lets the host process a block's shared-memory operations on a
// single thread without locking.
package logging

import (
	"runtime"
	"sync/atomic"
	"time"

	"barracuda/internal/trace"
)

// Backoff is a bounded exponential spin-wait for the queue's spin loops:
// a few hot spins (the producer or consumer is usually only nanoseconds
// away), then cooperative yields, then sleeps that double up to a cap.
// The cap keeps wake-up latency bounded while letting idle consumers at
// high queue counts stop burning cores — the paper's many-queue
// configurations (~1.1–1.5 queues per SM) only pay off if a quiet
// queue's detector thread costs (almost) nothing.
type Backoff struct {
	n uint32
}

const (
	backoffSpins  = 4                // hot spins before yielding
	backoffYields = 8                // Gosched rounds before sleeping
	backoffCapExp = 7                // sleep cap: 1µs << 7 = 128µs
	backoffUnit   = time.Microsecond // first sleep duration
)

// Wait performs one backoff step.
func (b *Backoff) Wait() {
	switch {
	case b.n < backoffSpins:
		// Hot spin: nothing but the loop itself.
	case b.n < backoffSpins+backoffYields:
		runtime.Gosched()
	default:
		exp := b.n - backoffSpins - backoffYields
		if exp > backoffCapExp {
			exp = backoffCapExp
		}
		time.Sleep(backoffUnit << exp)
	}
	b.n++
}

// Reset returns the backoff to the hot-spin phase; call it after the
// awaited condition fires so the next wait starts cheap again.
func (b *Backoff) Reset() { b.n = 0 }

// WarpWidth is the number of address slots in a record (one per lane).
const WarpWidth = 32

// SpaceID identifies the memory space of a logged access.
type SpaceID uint8

// Memory spaces appearing in records.
const (
	SpaceGlobal SpaceID = iota
	SpaceShared
	SpaceLocal
)

func (s SpaceID) String() string {
	switch s {
	case SpaceGlobal:
		return "global"
	case SpaceShared:
		return "shared"
	case SpaceLocal:
		return "local"
	}
	return "?"
}

// Record is one warp-level event, closely modeled on the paper's queue
// record: a header identifying the warp, the operation and the active
// mask, plus one address slot per lane. (The paper's record is
// 16+8*32 = 272 bytes; ours carries the block id and static PC for race
// reporting, so the header is a few bytes wider.)
type Record struct {
	Warp  uint32 // global warp index
	Block uint32 // thread block index (queue affinity, shared-memory key)
	Op    trace.OpKind
	Space SpaceID
	Size  uint8  // access size in bytes (memory ops)
	Mask  uint32 // active thread mask (bit i = lane i)
	PC    uint32 // source line of the logged instruction
	// Seq is a global sequence number stamped on synchronization
	// (acquire/release) records only. Detector threads process sync
	// records in Seq order, which — combined with per-queue FIFO order —
	// guarantees that everything a release publishes has been processed
	// before any dependent acquire is, even across queues.
	Seq   uint64
	Addrs [WarpWidth]uint64
	// Vals carries the per-lane stored values for write records, used by
	// the detector's "same-value" intra-warp race filter (§3.3.1): if
	// all lanes of a warp write the same value to a location, the
	// outcome is well-defined and not reported as a race.
	Vals [WarpWidth]uint64
}

// Queue is a bounded multi-producer single-consumer ring of Records.
//
// Producers reserve a virtual index with an atomic fetch-add on the write
// head, spin while the ring is full, fill the slot, and publish it by
// storing the slot's sequence number with release semantics; the first
// producer whose predecessor slots are all published advances the commit
// index. The (single) consumer reads slots in virtual-index order and
// advances the read head.
type Queue struct {
	capacity uint64
	slots    []Record
	seq      []atomic.Uint64 // slot published when seq[i%cap] == i+1

	writeHead atomic.Uint64
	commit    atomic.Uint64
	readHead  atomic.Uint64
}

// NewQueue creates a queue with the given capacity (rounded up to a power
// of two, minimum 2).
func NewQueue(capacity int) *Queue {
	c := uint64(2)
	for c < uint64(capacity) {
		c <<= 1
	}
	return &Queue{
		capacity: c,
		slots:    make([]Record, c),
		seq:      make([]atomic.Uint64, c),
	}
}

// Cap returns the queue capacity in records.
func (q *Queue) Cap() int { return int(q.capacity) }

// Enqueue appends a record, waiting (with bounded exponential backoff)
// while the queue is full. It is safe for concurrent producers.
func (q *Queue) Enqueue(r *Record) {
	i := q.writeHead.Add(1) - 1
	// Wait for space: full when the write head is capacity entries ahead
	// of the read head. The backoff matters most at GOMAXPROCS=1, where
	// a hard spin against a descheduled consumer would make progress
	// only through involuntary preemption.
	var bo Backoff
	for i-q.readHead.Load() >= q.capacity {
		bo.Wait()
	}
	q.slots[i&(q.capacity-1)] = *r
	q.seq[i&(q.capacity-1)].Store(i + 1)
	q.advanceCommit()
}

// advanceCommit moves the commit index over every contiguously published
// slot.
func (q *Queue) advanceCommit() {
	for {
		c := q.commit.Load()
		if q.seq[c&(q.capacity-1)].Load() != c+1 {
			return
		}
		q.commit.CompareAndSwap(c, c+1)
	}
}

// TryDequeue copies the next record into r and reports whether one was
// available. Must be called from a single consumer goroutine per queue.
func (q *Queue) TryDequeue(r *Record) bool {
	i := q.readHead.Load()
	if q.seq[i&(q.capacity-1)].Load() != i+1 {
		return false
	}
	*r = q.slots[i&(q.capacity-1)]
	q.readHead.Store(i + 1)
	return true
}

// Dequeue blocks (with bounded exponential backoff) until a record is
// available.
func (q *Queue) Dequeue(r *Record) {
	var bo Backoff
	for !q.TryDequeue(r) {
		bo.Wait()
	}
}

// DequeueBatch drains up to len(dst) committed records into dst and
// returns how many were copied (0 when the queue is empty). One call is
// a single atomic handshake — one read-head load, one commit load and
// one read-head store — instead of Dequeue's per-record sequence, which
// is what lets a consumer amortize the transport cost over a whole
// batch. Must be called from a single consumer goroutine per queue.
//
// Records between the read head and the commit index are fully
// published: a producer stores the slot, release-publishes its sequence
// number, and the commit index only advances over published slots, so
// the acquire-load of commit below makes every slot copy safe.
func (q *Queue) DequeueBatch(dst []Record) int {
	if len(dst) == 0 {
		return 0
	}
	rh := q.readHead.Load()
	c := q.commit.Load()
	if c <= rh {
		return 0
	}
	n := c - rh
	if n > uint64(len(dst)) {
		n = uint64(len(dst))
	}
	mask := q.capacity - 1
	for k := uint64(0); k < n; k++ {
		dst[k] = q.slots[(rh+k)&mask]
	}
	q.readHead.Store(rh + n)
	return int(n)
}

// Pending returns the number of committed-but-unread records.
func (q *Queue) Pending() int {
	c := q.commit.Load()
	rh := q.readHead.Load()
	if c < rh {
		return 0
	}
	return int(c - rh)
}

// Stats reports the three virtual indices.
func (q *Queue) Stats() (writeHead, commit, readHead uint64) {
	return q.writeHead.Load(), q.commit.Load(), q.readHead.Load()
}

// Set is a group of queues with thread-block affinity: block b always logs
// to queue b mod len(queues), mirroring the paper's block-to-queue mapping.
type Set struct {
	Queues []*Queue
}

// NewSet creates n queues of the given per-queue capacity.
func NewSet(n, capacity int) *Set {
	if n < 1 {
		n = 1
	}
	s := &Set{Queues: make([]*Queue, n)}
	for i := range s.Queues {
		s.Queues[i] = NewQueue(capacity)
	}
	return s
}

// ForBlock returns the queue assigned to thread block b.
func (s *Set) ForBlock(b int) *Queue {
	return s.Queues[b%len(s.Queues)]
}

// CloseAll enqueues an end-of-stream sentinel on every queue.
func (s *Set) CloseAll() {
	for _, q := range s.Queues {
		q.Enqueue(&Record{Op: trace.OpEnd})
	}
}
