// Package logging implements the device-to-host event channel of
// BARRACUDA (§4.2, Figure 6): fixed-size warp-level records carried by
// lock-free ring queues whose contents are tracked by three monotonically
// increasing virtual indices — a write head (next entry available for
// writing by the GPU-side instrumentation), a commit index (entries
// transferred and visible to the host), and a read head (next entry to be
// consumed by the host race detector). Virtual indices are mapped to
// physical slots by modulus with the queue size.
//
// Multiple queues are used (the paper finds ~1.1–1.5 queues per SM
// optimal); each thread block sends all of its events to a single queue,
// which lets the host process a block's shared-memory operations on a
// single thread without locking.
package logging

import (
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"

	"barracuda/internal/trace"
)

// Backoff is a bounded exponential spin-wait for the queue's spin loops:
// a few hot spins (the producer or consumer is usually only nanoseconds
// away), then cooperative yields, then sleeps that double up to a cap.
// The cap keeps wake-up latency bounded while letting idle consumers at
// high queue counts stop burning cores — the paper's many-queue
// configurations (~1.1–1.5 queues per SM) only pay off if a quiet
// queue's detector thread costs (almost) nothing.
type Backoff struct {
	n uint32
}

const (
	backoffSpins  = 4                // hot spins before yielding
	backoffYields = 8                // Gosched rounds before sleeping
	backoffCapExp = 7                // sleep cap: 1µs << 7 = 128µs
	backoffUnit   = time.Microsecond // first sleep duration
)

// Wait performs one backoff step.
func (b *Backoff) Wait() {
	switch {
	case b.n < backoffSpins:
		// Hot spin: nothing but the loop itself.
	case b.n < backoffSpins+backoffYields:
		runtime.Gosched()
	default:
		exp := b.n - backoffSpins - backoffYields
		if exp > backoffCapExp {
			exp = backoffCapExp
		}
		time.Sleep(backoffUnit << exp)
	}
	b.n++
}

// Reset returns the backoff to the hot-spin phase; call it after the
// awaited condition fires so the next wait starts cheap again.
func (b *Backoff) Reset() { b.n = 0 }

// WarpWidth is the number of address slots in a record (one per lane).
const WarpWidth = 32

// SpaceID identifies the memory space of a logged access.
type SpaceID uint8

// Memory spaces appearing in records.
const (
	SpaceGlobal SpaceID = iota
	SpaceShared
	SpaceLocal
)

func (s SpaceID) String() string {
	switch s {
	case SpaceGlobal:
		return "global"
	case SpaceShared:
		return "shared"
	case SpaceLocal:
		return "local"
	}
	return "?"
}

// Record flags.
const (
	// FlagCoalesced marks a memory record whose active lanes form one
	// contiguous ascending run: lane rank k (k-th set bit of Mask)
	// accesses Base + k*Size. For such records the per-lane address
	// array is redundant — LaneAddr reconstructs every address from the
	// (Base, Mask, Size) header — so the transport skips copying Addrs
	// (and, for non-write records, Vals) across the wire.
	FlagCoalesced uint8 = 1 << 0
)

// Record is one warp-level event, closely modeled on the paper's queue
// record: a header identifying the warp, the operation and the active
// mask, plus one address slot per lane. (The paper's record is
// 16+8*32 = 272 bytes; ours carries the block id and static PC for race
// reporting, so the header is a few bytes wider.)
type Record struct {
	Warp  uint32 // global warp index
	Block uint32 // thread block index (queue affinity, shared-memory key)
	Op    trace.OpKind
	Space SpaceID
	Size  uint8  // access size in bytes (memory ops)
	Flags uint8  // FlagCoalesced et al.
	Mask  uint32 // active thread mask (bit i = lane i)
	PC    uint32 // source line of the logged instruction
	// Base is the first active lane's address of a coalesced record
	// (§4.2's compact encoding of the dominant access pattern): with
	// FlagCoalesced set, lane rank k accesses Base + k*Size and Addrs
	// need not travel on the wire.
	Base uint64
	// Seq is a global sequence number stamped on synchronization
	// (acquire/release) records only. Detector threads process sync
	// records in Seq order, which — combined with per-queue FIFO order —
	// guarantees that everything a release publishes has been processed
	// before any dependent acquire is, even across queues.
	Seq   uint64
	Addrs [WarpWidth]uint64
	// Vals carries the per-lane stored values for write records, used by
	// the detector's "same-value" intra-warp race filter (§3.3.1): if
	// all lanes of a warp write the same value to a location, the
	// outcome is well-defined and not reported as a race.
	Vals [WarpWidth]uint64
}

// Coalesced reports whether the record carries the compact base+mask
// encoding (FlagCoalesced).
func (r *Record) Coalesced() bool { return r.Flags&FlagCoalesced != 0 }

// LaneAddr returns the address accessed by a lane: the compact encoding
// for coalesced records, the per-lane slot otherwise. The lane must be
// active (Mask bit set); for inactive lanes of a coalesced record the
// result is meaningless.
func (r *Record) LaneAddr(lane int) uint64 {
	if r.Flags&FlagCoalesced == 0 {
		return r.Addrs[lane]
	}
	rank := bits.OnesCount32(r.Mask & (1<<uint(lane) - 1))
	return r.Base + uint64(rank)*uint64(r.Size)
}

// Classify tags a filled memory record as coalesced when its active
// lanes form a contiguous ascending run with stride == Size, and clears
// the tag otherwise. It is the reference classifier: the simulator's
// emission path detects the same pattern inline while filling Addrs.
func (r *Record) Classify() {
	r.Flags &^= FlagCoalesced
	r.Base = 0
	switch r.Op {
	case trace.OpRead, trace.OpWrite, trace.OpAtom:
	default:
		return // only plain memory accesses span cells
	}
	if r.Mask == 0 || r.Size == 0 {
		return
	}
	first := true
	var base, next uint64
	for m := r.Mask; m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		a := r.Addrs[lane]
		if first {
			base, next, first = a, a+uint64(r.Size), false
			continue
		}
		if a != next {
			return
		}
		next += uint64(r.Size)
	}
	r.Flags |= FlagCoalesced
	r.Base = base
}

// copyRecord moves a record across the transport. Coalesced records skip
// the 256-byte address array — LaneAddr reconstructs every address from
// the header — and skip the value array too unless the record is a write
// (the same-value filter may still need Vals when lanes share a shadow
// cell at coarse granularity). Everything else is copied in full.
//
// Callers reuse destination slots/buffers, so a skipped array may hold
// stale data from an earlier record; consumers must go through LaneAddr
// (and only read Vals of write records), never raw Addrs.
func copyRecord(dst, src *Record) {
	if src.Flags&FlagCoalesced == 0 {
		*dst = *src
		return
	}
	copyHeader(dst, src)
	if src.Op == trace.OpWrite {
		dst.Vals = src.Vals
	}
}

// copyHeader copies every non-array field. A reflection test asserts
// this stays in sync with the Record struct.
func copyHeader(dst, src *Record) {
	dst.Warp = src.Warp
	dst.Block = src.Block
	dst.Op = src.Op
	dst.Space = src.Space
	dst.Size = src.Size
	dst.Flags = src.Flags
	dst.Mask = src.Mask
	dst.PC = src.PC
	dst.Base = src.Base
	dst.Seq = src.Seq
}

// Queue is a bounded multi-producer single-consumer ring of Records.
//
// Producers reserve a virtual index with an atomic fetch-add on the write
// head, spin while the ring is full, fill the slot, and publish it by
// storing the slot's sequence number with release semantics; the first
// producer whose predecessor slots are all published advances the commit
// index. The (single) consumer reads slots in virtual-index order and
// advances the read head.
type Queue struct {
	capacity uint64
	slots    []Record
	seq      []atomic.Uint64 // slot published when seq[i%cap] == i+1

	writeHead atomic.Uint64
	commit    atomic.Uint64
	readHead  atomic.Uint64
}

// NewQueue creates a queue with the given capacity (rounded up to a power
// of two, minimum 2).
func NewQueue(capacity int) *Queue {
	c := uint64(2)
	for c < uint64(capacity) {
		c <<= 1
	}
	return &Queue{
		capacity: c,
		slots:    make([]Record, c),
		seq:      make([]atomic.Uint64, c),
	}
}

// Cap returns the queue capacity in records.
func (q *Queue) Cap() int { return int(q.capacity) }

// Enqueue appends a record, waiting (with bounded exponential backoff)
// while the queue is full. It is safe for concurrent producers.
func (q *Queue) Enqueue(r *Record) {
	i := q.writeHead.Add(1) - 1
	// Wait for space: full when the write head is capacity entries ahead
	// of the read head. The backoff matters most at GOMAXPROCS=1, where
	// a hard spin against a descheduled consumer would make progress
	// only through involuntary preemption.
	var bo Backoff
	for i-q.readHead.Load() >= q.capacity {
		bo.Wait()
	}
	copyRecord(&q.slots[i&(q.capacity-1)], r)
	q.seq[i&(q.capacity-1)].Store(i + 1)
	q.advanceCommit()
}

// advanceCommit moves the commit index over every contiguously published
// slot.
func (q *Queue) advanceCommit() {
	for {
		c := q.commit.Load()
		if q.seq[c&(q.capacity-1)].Load() != c+1 {
			return
		}
		q.commit.CompareAndSwap(c, c+1)
	}
}

// TryDequeue copies the next record into r and reports whether one was
// available. Must be called from a single consumer goroutine per queue.
func (q *Queue) TryDequeue(r *Record) bool {
	i := q.readHead.Load()
	if q.seq[i&(q.capacity-1)].Load() != i+1 {
		return false
	}
	copyRecord(r, &q.slots[i&(q.capacity-1)])
	q.readHead.Store(i + 1)
	return true
}

// Dequeue blocks (with bounded exponential backoff) until a record is
// available.
func (q *Queue) Dequeue(r *Record) {
	var bo Backoff
	for !q.TryDequeue(r) {
		bo.Wait()
	}
}

// DequeueBatch drains up to len(dst) committed records into dst and
// returns how many were copied (0 when the queue is empty). One call is
// a single atomic handshake — one read-head load, one commit load and
// one read-head store — instead of Dequeue's per-record sequence, which
// is what lets a consumer amortize the transport cost over a whole
// batch. Must be called from a single consumer goroutine per queue.
//
// Records between the read head and the commit index are fully
// published: a producer stores the slot, release-publishes its sequence
// number, and the commit index only advances over published slots, so
// the acquire-load of commit below makes every slot copy safe.
func (q *Queue) DequeueBatch(dst []Record) int {
	if len(dst) == 0 {
		return 0
	}
	rh := q.readHead.Load()
	c := q.commit.Load()
	if c <= rh {
		return 0
	}
	n := c - rh
	if n > uint64(len(dst)) {
		n = uint64(len(dst))
	}
	mask := q.capacity - 1
	for k := uint64(0); k < n; k++ {
		copyRecord(&dst[k], &q.slots[(rh+k)&mask])
	}
	q.readHead.Store(rh + n)
	return int(n)
}

// Pending returns the number of committed-but-unread records.
func (q *Queue) Pending() int {
	c := q.commit.Load()
	rh := q.readHead.Load()
	if c < rh {
		return 0
	}
	return int(c - rh)
}

// Stats reports the three virtual indices.
func (q *Queue) Stats() (writeHead, commit, readHead uint64) {
	return q.writeHead.Load(), q.commit.Load(), q.readHead.Load()
}

// Set is a group of queues with thread-block affinity: block b always logs
// to queue b mod len(queues), mirroring the paper's block-to-queue mapping.
type Set struct {
	Queues []*Queue
}

// NewSet creates n queues of the given per-queue capacity.
func NewSet(n, capacity int) *Set {
	if n < 1 {
		n = 1
	}
	s := &Set{Queues: make([]*Queue, n)}
	for i := range s.Queues {
		s.Queues[i] = NewQueue(capacity)
	}
	return s
}

// ForBlock returns the queue assigned to thread block b.
func (s *Set) ForBlock(b int) *Queue {
	return s.Queues[b%len(s.Queues)]
}

// CloseAll enqueues an end-of-stream sentinel on every queue.
func (s *Set) CloseAll() {
	for _, q := range s.Queues {
		q.Enqueue(&Record{Op: trace.OpEnd})
	}
}
