package logging

import (
	"reflect"
	"testing"

	"barracuda/internal/trace"
)

// TestClassifyCoalesced covers the classifier's accept/reject boundary.
func TestClassifyCoalesced(t *testing.T) {
	mk := func(op trace.OpKind, size uint8, mask uint32, addrs ...uint64) *Record {
		r := &Record{Op: op, Size: size, Mask: mask}
		lane := 0
		for m := mask; m != 0 && len(addrs) > 0; m &= m - 1 {
			for mask&(1<<uint(lane)) == 0 {
				lane++
			}
			r.Addrs[lane] = addrs[0]
			addrs = addrs[1:]
			lane++
		}
		return r
	}
	cases := []struct {
		name string
		r    *Record
		want bool
		base uint64
	}{
		{"full-contiguous", mk(trace.OpWrite, 4, 0xF, 100, 104, 108, 112), true, 100},
		{"single-lane", mk(trace.OpRead, 8, 1<<7, 640), true, 640},
		{"partial-mask-contiguous", mk(trace.OpRead, 4, 0b1010, 16, 20), true, 16},
		{"strided", mk(trace.OpWrite, 4, 0x7, 0, 8, 16), false, 0},
		{"descending", mk(trace.OpWrite, 4, 0x3, 104, 100), false, 0},
		{"same-address", mk(trace.OpRead, 4, 0x3, 100, 100), false, 0},
		{"sync-op", mk(trace.OpAcqGlb, 4, 0x3, 100, 104), false, 0},
		{"barrier", mk(trace.OpBar, 0, 0xF), false, 0},
		{"zero-size", mk(trace.OpWrite, 0, 0x3, 0, 0), false, 0},
		{"empty-mask", mk(trace.OpWrite, 4, 0), false, 0},
		{"atom-contiguous", mk(trace.OpAtom, 4, 0x3, 40, 44), true, 40},
	}
	for _, tc := range cases {
		tc.r.Classify()
		if got := tc.r.Coalesced(); got != tc.want {
			t.Errorf("%s: Coalesced() = %v, want %v", tc.name, got, tc.want)
		}
		if tc.r.Base != tc.base {
			t.Errorf("%s: Base = %d, want %d", tc.name, tc.r.Base, tc.base)
		}
	}
}

// TestLaneAddrMatchesAddrs: for a classified record the compact encoding
// must reproduce the address array exactly, at every active lane.
func TestLaneAddrMatchesAddrs(t *testing.T) {
	r := &Record{Op: trace.OpWrite, Size: 8, Mask: 0xFFF0_00F1}
	// Fill ascending contiguous addresses over the active lanes.
	rank := 0
	for lane := 0; lane < WarpWidth; lane++ {
		if r.Mask&(1<<uint(lane)) == 0 {
			continue
		}
		r.Addrs[lane] = 0x1000 + uint64(rank)*8
		rank++
	}
	r.Classify()
	if !r.Coalesced() {
		t.Fatal("contiguous record not classified coalesced")
	}
	for lane := 0; lane < WarpWidth; lane++ {
		if r.Mask&(1<<uint(lane)) == 0 {
			continue
		}
		if got, want := r.LaneAddr(lane), r.Addrs[lane]; got != want {
			t.Errorf("LaneAddr(%d) = %#x, want %#x", lane, got, want)
		}
	}
	// Non-coalesced records fall back to the array.
	r.Flags = 0
	r.Addrs[4] = 0xdead
	if r.Mask&(1<<4) != 0 && r.LaneAddr(4) != 0xdead {
		t.Errorf("non-coalesced LaneAddr ignored Addrs")
	}
}

// TestCopyHeaderCoversAllScalarFields is the drift guard: every
// non-array field of Record must be copied by copyHeader, so a future
// field addition cannot silently vanish on the coalesced wire path.
func TestCopyHeaderCoversAllScalarFields(t *testing.T) {
	var src, dst Record
	sv := reflect.ValueOf(&src).Elem()
	rt := sv.Type()
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if f.Type.Kind() == reflect.Array {
			continue // Addrs, Vals: intentionally skipped
		}
		fv := sv.Field(i)
		switch f.Type.Kind() {
		case reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uint:
			fv.SetUint(uint64(i + 1))
		case reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64, reflect.Int:
			fv.SetInt(int64(i + 1))
		default:
			t.Fatalf("Record field %s has kind %v: teach this test and copyHeader about it", f.Name, f.Type.Kind())
		}
	}
	copyHeader(&dst, &src)
	for i := 0; i < rt.NumField(); i++ {
		if rt.Field(i).Type.Kind() == reflect.Array {
			continue
		}
		if !reflect.DeepEqual(sv.Field(i).Interface(), reflect.ValueOf(&dst).Elem().Field(i).Interface()) {
			t.Errorf("copyHeader misses Record.%s — update copyHeader (and the wire contract) for the new field", rt.Field(i).Name)
		}
	}
}

// TestWireSkipsCoalescedArrays: a coalesced read's Addrs/Vals do not
// travel; a coalesced write keeps Vals (same-value filter needs them at
// coarse granularity); non-coalesced records travel in full.
func TestWireSkipsCoalescedArrays(t *testing.T) {
	q := NewQueue(8)

	// Poison the ring slots so "skipped" is observable.
	poison := Record{Op: trace.OpNone}
	for i := range poison.Addrs {
		poison.Addrs[i] = ^uint64(0)
		poison.Vals[i] = ^uint64(0)
	}
	for i := 0; i < q.Cap(); i++ {
		q.Enqueue(&poison)
	}
	var sink Record
	for i := 0; i < q.Cap(); i++ {
		q.Dequeue(&sink)
	}

	r := Record{Op: trace.OpRead, Size: 4, Mask: 0x3}
	r.Addrs[0], r.Addrs[1] = 100, 104
	r.Classify()
	if !r.Coalesced() {
		t.Fatal("setup: record not coalesced")
	}
	q.Enqueue(&r)
	// Pre-fill the dequeue destination with a sentinel distinct from the
	// ring poison: if either hop copied the arrays, Addrs[0] would be the
	// record's 100 or the ring's ^0, not the sentinel.
	const sentinel = 0xBBBB_BBBB_BBBB_BBBB
	var got Record
	for i := range got.Addrs {
		got.Addrs[i] = sentinel
	}
	q.Dequeue(&got)
	if !got.Coalesced() || got.Base != 100 || got.Mask != 0x3 || got.Op != trace.OpRead {
		t.Fatalf("header mangled: %+v", got)
	}
	if got.Addrs[0] != sentinel {
		t.Errorf("coalesced read copied Addrs: %#x", got.Addrs[0])
	}
	if got.LaneAddr(0) != 100 || got.LaneAddr(1) != 104 {
		t.Errorf("LaneAddr after wire = %#x,%#x want 100,104", got.LaneAddr(0), got.LaneAddr(1))
	}

	w := Record{Op: trace.OpWrite, Size: 4, Mask: 0x3}
	w.Addrs[0], w.Addrs[1] = 200, 204
	w.Vals[0], w.Vals[1] = 7, 9
	w.Classify()
	q.Enqueue(&w)
	q.Dequeue(&got)
	if got.Vals[0] != 7 || got.Vals[1] != 9 {
		t.Errorf("coalesced write lost Vals: %v", got.Vals[:2])
	}

	full := Record{Op: trace.OpWrite, Size: 4, Mask: 0x3}
	full.Addrs[0], full.Addrs[1] = 300, 312 // strided: not coalesced
	full.Classify()
	if full.Coalesced() {
		t.Fatal("setup: strided record classified coalesced")
	}
	q.Enqueue(&full)
	q.Dequeue(&got)
	if got.Addrs[0] != 300 || got.Addrs[1] != 312 {
		t.Errorf("non-coalesced record lost Addrs: %v", got.Addrs[:2])
	}
}
