package logging

import (
	"sync"
	"testing"

	"barracuda/internal/trace"
)

// TestStressMultiQueueWraparound is the go test -race stress for the
// concurrent core of the transport: many producer "warps" fan records
// out across a multi-queue Set through tiny rings (forcing the virtual
// indices far past wraparound and exercising the full-queue
// backpressure spin), while one consumer goroutine per queue — the
// paper's detector-thread arrangement — drains and validates per-block
// FIFO order.
func TestStressMultiQueueWraparound(t *testing.T) {
	const (
		queues    = 3
		queueCap  = 8 // rounds to 8 slots: thousands of wraps below
		producers = 8
		blocks    = 12
		perBlock  = 2000
	)
	set := NewSet(queues, queueCap)

	// Consumers: per-queue FIFO order must hold per block; values are
	// compared against a per-block sequence counter.
	type seen struct {
		mu   sync.Mutex
		next map[uint32]uint64
		n    int
	}
	results := make([]*seen, queues)
	var consumers sync.WaitGroup
	for qi, q := range set.Queues {
		results[qi] = &seen{next: make(map[uint32]uint64)}
		consumers.Add(1)
		go func(q *Queue, s *seen) {
			defer consumers.Done()
			var r Record
			for {
				q.Dequeue(&r)
				if r.Op == trace.OpEnd {
					return
				}
				s.mu.Lock()
				if want := s.next[r.Block]; r.Addrs[0] != want {
					t.Errorf("queue: block %d out of order: got %d, want %d", r.Block, r.Addrs[0], want)
				}
				s.next[r.Block]++
				s.n++
				s.mu.Unlock()
			}
		}(q, results[qi])
	}

	// Producers: each block's records are produced by exactly one
	// producer (as on a real GPU, where a block's warps share an SM and
	// the instrumentation serializes its queue writes per warp); blocks
	// are spread over producers and queues by the Set's affinity rule.
	var producersWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		producersWG.Add(1)
		go func(p int) {
			defer producersWG.Done()
			var r Record
			for b := p; b < blocks; b += producers {
				r.Block = uint32(b)
				r.Warp = uint32(p)
				r.Op = trace.OpWrite
				for i := 0; i < perBlock; i++ {
					r.Addrs[0] = uint64(i)
					set.ForBlock(b).Enqueue(&r)
				}
			}
		}(p)
	}
	producersWG.Wait()
	set.CloseAll()
	consumers.Wait()

	total := 0
	for _, s := range results {
		total += s.n
	}
	if want := blocks * perBlock; total != want {
		t.Fatalf("consumed %d records, want %d", total, want)
	}
	// Every ring must have wrapped many times over.
	for qi, q := range set.Queues {
		w, _, _ := q.Stats()
		if w <= uint64(q.Cap()) {
			t.Errorf("queue %d: write head %d never wrapped (cap %d)", qi, w, q.Cap())
		}
	}
}

// TestStressInterleavedProducersOneBlock hammers a single tiny queue
// with many producers writing the same block — maximal contention on
// the write head, the commit index and the backpressure spin.
func TestStressInterleavedProducersOneBlock(t *testing.T) {
	const (
		producers = 16
		each      = 5000
	)
	q := NewQueue(4)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var r Record
			r.Op = trace.OpWrite
			r.Warp = uint32(p)
			for i := 0; i < each; i++ {
				r.Addrs[0] = uint64(p)<<32 | uint64(i)
				q.Enqueue(&r)
			}
		}(p)
	}

	perProducer := make(map[uint32]uint64)
	got := 0
	var r Record
	for got < producers*each {
		q.Dequeue(&r)
		// Per-producer order must survive arbitrary interleaving.
		p, i := r.Warp, r.Addrs[0]&0xffffffff
		if want := perProducer[p]; i != want {
			t.Fatalf("producer %d out of order: got %d, want %d", p, i, want)
		}
		perProducer[p]++
		got++
	}
	wg.Wait()
	if q.Pending() != 0 {
		t.Errorf("pending = %d after drain", q.Pending())
	}
}
