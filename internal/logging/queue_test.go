package logging

import (
	"sync"
	"testing"

	"barracuda/internal/trace"
)

func TestQueueCapacityRounding(t *testing.T) {
	cases := []struct{ in, want int }{{1, 2}, {2, 2}, {3, 4}, {16, 16}, {1000, 1024}}
	for _, c := range cases {
		if got := NewQueue(c.in).Cap(); got != c.want {
			t.Errorf("NewQueue(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestEnqueueDequeueOrder(t *testing.T) {
	q := NewQueue(8)
	for i := 0; i < 5; i++ {
		q.Enqueue(&Record{PC: uint32(i), Op: trace.OpWrite})
	}
	if q.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", q.Pending())
	}
	var r Record
	for i := 0; i < 5; i++ {
		if !q.TryDequeue(&r) {
			t.Fatalf("TryDequeue %d failed", i)
		}
		if r.PC != uint32(i) {
			t.Errorf("record %d has PC %d", i, r.PC)
		}
	}
	if q.TryDequeue(&r) {
		t.Error("TryDequeue on empty queue succeeded")
	}
}

func TestQueueWrapAround(t *testing.T) {
	q := NewQueue(4)
	var r Record
	for round := 0; round < 10; round++ {
		for i := 0; i < 4; i++ {
			q.Enqueue(&Record{PC: uint32(round*4 + i)})
		}
		for i := 0; i < 4; i++ {
			if !q.TryDequeue(&r) {
				t.Fatalf("round %d: dequeue %d failed", round, i)
			}
			if r.PC != uint32(round*4+i) {
				t.Errorf("round %d: PC = %d, want %d", round, r.PC, round*4+i)
			}
		}
	}
	w, c, rh := q.Stats()
	if w != 40 || c != 40 || rh != 40 {
		t.Errorf("stats = %d %d %d, want 40 40 40 (virtual indices)", w, c, rh)
	}
}

func TestQueueBackpressure(t *testing.T) {
	q := NewQueue(4)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			q.Enqueue(&Record{PC: uint32(i)})
		}
		close(done)
	}()
	var r Record
	for i := 0; i < 100; i++ {
		q.Dequeue(&r)
		if r.PC != uint32(i) {
			t.Errorf("PC = %d, want %d", r.PC, i)
		}
	}
	<-done
}

func TestConcurrentProducers(t *testing.T) {
	q := NewQueue(64)
	const producers = 4
	const perProducer = 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Enqueue(&Record{Warp: uint32(p), PC: uint32(i)})
			}
		}(p)
	}
	// Consumer: verify per-producer FIFO order and total count.
	next := make([]uint32, producers)
	var r Record
	for n := 0; n < producers*perProducer; n++ {
		q.Dequeue(&r)
		if r.PC != next[r.Warp] {
			t.Fatalf("producer %d out of order: got PC %d, want %d", r.Warp, r.PC, next[r.Warp])
		}
		next[r.Warp]++
	}
	wg.Wait()
	if q.Pending() != 0 {
		t.Errorf("Pending = %d after drain", q.Pending())
	}
}

func TestSetBlockAffinity(t *testing.T) {
	s := NewSet(3, 8)
	if len(s.Queues) != 3 {
		t.Fatalf("queues = %d", len(s.Queues))
	}
	if s.ForBlock(0) != s.Queues[0] || s.ForBlock(4) != s.Queues[1] || s.ForBlock(5) != s.Queues[2] {
		t.Error("block-to-queue mapping wrong")
	}
	// Same block always maps to the same queue.
	if s.ForBlock(7) != s.ForBlock(7) {
		t.Error("mapping not stable")
	}
}

func TestSetCloseAll(t *testing.T) {
	s := NewSet(2, 4)
	s.CloseAll()
	var r Record
	for i, q := range s.Queues {
		if !q.TryDequeue(&r) || r.Op != trace.OpEnd {
			t.Errorf("queue %d: missing end sentinel", i)
		}
	}
}

func TestNewSetMinimumOneQueue(t *testing.T) {
	if got := len(NewSet(0, 4).Queues); got != 1 {
		t.Errorf("NewSet(0) queues = %d, want 1", got)
	}
}

func TestRecordFieldsPreserved(t *testing.T) {
	q := NewQueue(2)
	in := Record{
		Warp: 7, Block: 3, Op: trace.OpAcqGlb, Space: SpaceShared,
		Size: 4, Mask: 0xdeadbeef, PC: 42,
	}
	in.Addrs[0] = 0x1000
	in.Addrs[31] = 0x2000
	q.Enqueue(&in)
	var out Record
	q.Dequeue(&out)
	if out != in {
		t.Errorf("record mutated in transit:\n in=%+v\nout=%+v", in, out)
	}
}

func TestSpaceIDString(t *testing.T) {
	if SpaceGlobal.String() != "global" || SpaceShared.String() != "shared" || SpaceLocal.String() != "local" {
		t.Error("SpaceID strings wrong")
	}
}
