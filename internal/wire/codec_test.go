package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"barracuda/internal/core"
	"barracuda/internal/logging"
	"barracuda/internal/trace"
	"barracuda/internal/vc"
)

func TestHelloRoundTrip(t *testing.T) {
	in := Hello{APIKey: "tenant-a", Client: "test/1"}
	out, err := DecodeHello(EncodeHello(in))
	if err != nil || out != in {
		t.Fatalf("got %+v, %v; want %+v", out, err, in)
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	in := Welcome{MaxFrame: MaxFrame, MaxModule: MaxModule}
	out, err := DecodeWelcome(EncodeWelcome(in))
	if err != nil || out != in {
		t.Fatalf("got %+v, %v; want %+v", out, err, in)
	}
}

func TestModBeginRoundTrip(t *testing.T) {
	hash := bytes.Repeat([]byte{7}, 32)
	in := ModBegin{TotalLen: 123456, Hash: hash}
	out, err := DecodeModBegin(EncodeModBegin(in))
	if err != nil || out.TotalLen != in.TotalLen || !bytes.Equal(out.Hash, in.Hash) {
		t.Fatalf("got %+v, %v; want %+v", out, err, in)
	}
	// Undeclared hash.
	out, err = DecodeModBegin(EncodeModBegin(ModBegin{TotalLen: 9}))
	if err != nil || out.Hash != nil {
		t.Fatalf("undeclared hash: got %+v, %v", out, err)
	}
	// Wrong-length hash is malformed.
	if _, err := DecodeModBegin(EncodeModBegin(ModBegin{Hash: []byte{1, 2, 3}})); err == nil {
		t.Fatal("3-byte hash accepted")
	}
}

func TestLaunchRoundTrip(t *testing.T) {
	in := LaunchSpec{
		Seq:       42,
		Kernel:    "k",
		Grid:      8,
		Block:     256,
		WarpSize:  32,
		TimeoutMS: 30000,
		MaxInstrs: 1 << 24,
		Buffers:   []int{4096, 0, 65536},
		Config: ConfigSpec{
			Queues:         4,
			QueueCap:       1024,
			Granularity:    4,
			MaxRaces:       1024,
			ShadowCapBytes: 1 << 30,
			Ownership:      true,
			StaticPrune:    true,
			ProducerFilter: true,
		},
	}
	out, err := DecodeLaunch(EncodeLaunch(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("got %+v\nwant %+v", out, in)
	}
}

func TestRejectRoundTrip(t *testing.T) {
	in := Reject{Seq: 3, Code: CodeQueueFull, Msg: "queue full", RetryAfterMS: 1000}
	out, err := DecodeReject(EncodeReject(in))
	if err != nil || out != in {
		t.Fatalf("got %+v, %v; want %+v", out, err, in)
	}
}

func randomRace(rng *rand.Rand) core.Race {
	spaces := []logging.SpaceID{logging.SpaceGlobal, logging.SpaceShared}
	r := core.Race{
		Kind:      core.RaceKind(rng.Intn(3)),
		Space:     spaces[rng.Intn(len(spaces))],
		Block:     int32(rng.Intn(16)) - 1,
		Addr:      uint64(rng.Intn(1 << 20)),
		SameInstr: rng.Intn(2) == 0,
		Count:     1 + rng.Intn(1000),
	}
	r.Prev = core.Access{TID: vc.TID(rng.Intn(4096)), PC: uint32(rng.Intn(2000)), Write: rng.Intn(2) == 0, Atomic: rng.Intn(4) == 0}
	r.Cur = core.Access{TID: vc.TID(rng.Intn(4096)), PC: uint32(rng.Intn(2000)), Write: rng.Intn(2) == 0, Atomic: rng.Intn(4) == 0}
	return r
}

// TestRaceStreamRoundTrip drives the per-launch delta state through a
// random race sequence and checks the decoder reproduces it exactly.
func TestRaceStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var enc RaceEncoder
	var dec RaceDecoder
	for i := 0; i < 500; i++ {
		in := RaceEvent{Seq: uint64(rng.Intn(4)), Race: randomRace(rng)}
		p := EncodeRace(&enc, in)
		seq, err := PeekSeq(p)
		if err != nil || seq != in.Seq {
			t.Fatalf("i=%d: PeekSeq = %d, %v; want %d", i, seq, err, in.Seq)
		}
		out, err := DecodeRace(&dec, p)
		if err != nil {
			t.Fatalf("i=%d: %v", i, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("i=%d: got %+v\nwant %+v", i, out, in)
		}
	}
}

// TestSummaryRoundTrip is the property test over the terminal frame:
// random reports encode → decode → deep-equal, and the reassembled
// core.Report digests identically to the original.
func TestSummaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 200; iter++ {
		in := Summary{
			Seq:                uint64(rng.Intn(100)),
			Status:             []string{"done", "failed", "timeout"}[rng.Intn(3)],
			Error:              []string{"", "step budget exhausted"}[rng.Intn(2)],
			Kernel:             "k",
			CacheHit:           rng.Intn(2) == 0,
			RecordsSeen:        uint64(rng.Intn(1 << 20)),
			WarpInstrs:         uint64(rng.Intn(1 << 20)),
			SameValueFiltered:  uint64(rng.Intn(100)),
			DetectUS:           uint64(rng.Intn(1 << 20)),
			QueueWaitUS:        uint64(rng.Intn(1 << 10)),
			TotalUS:            uint64(rng.Intn(1 << 21)),
			ShadowPeakResident: uint64(rng.Intn(1 << 24)),
			ShadowLiveEvicts:   uint64(rng.Intn(4)),
			PrecisionDegraded:  rng.Intn(8) == 0,
			FilterSuppressed:   uint64(rng.Intn(1 << 16)),
			FilterFlushes:      uint64(rng.Intn(1 << 10)),
		}
		for i, n := 0, rng.Intn(40); i < n; i++ {
			in.Races = append(in.Races, randomRace(rng))
		}
		for i, n := 0, rng.Intn(4); i < n; i++ {
			in.Divergences = append(in.Divergences, Divergence{
				Block: rng.Intn(8), Warp: rng.Intn(8), PC: uint32(rng.Intn(1000)), Mask: rng.Uint32(),
			})
		}
		out, err := DecodeSummary(EncodeSummary(in))
		if err != nil {
			t.Fatalf("iter=%d: %v", iter, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("iter=%d: got %+v\nwant %+v", iter, out, in)
		}
		origRep := in.Report()
		if got, want := out.Report().CanonicalDigest(), origRep.CanonicalDigest(); got != want {
			t.Fatalf("iter=%d: digest mismatch after round trip", iter)
		}
	}
}

func randomRecord(rng *rand.Rand) logging.Record {
	ops := []trace.OpKind{trace.OpRead, trace.OpWrite, trace.OpAtom}
	var r logging.Record
	r.Op = ops[rng.Intn(len(ops))]
	r.Space = []logging.SpaceID{logging.SpaceGlobal, logging.SpaceShared}[rng.Intn(2)]
	r.Size = []uint8{1, 2, 4, 8}[rng.Intn(4)]
	r.Warp = uint32(rng.Intn(64))
	r.Block = uint32(rng.Intn(16))
	r.PC = uint32(rng.Intn(4000))
	r.Seq = uint64(rng.Intn(1 << 20))
	r.Mask = rng.Uint32()
	if r.Mask == 0 {
		r.Mask = 1
	}
	if rng.Intn(2) == 0 {
		// Coalesced: header-only on the wire, addresses via LaneAddr.
		r.Flags = logging.FlagCoalesced
		r.Base = uint64(rng.Intn(1<<24)) &^ 7
		if r.Op == trace.OpWrite {
			for lane := 0; lane < logging.WarpWidth; lane++ {
				if r.Mask&(1<<uint(lane)) != 0 {
					r.Vals[lane] = uint64(rng.Intn(1 << 16))
				}
			}
		}
	} else {
		for lane := 0; lane < logging.WarpWidth; lane++ {
			if r.Mask&(1<<uint(lane)) == 0 {
				continue
			}
			r.Addrs[lane] = uint64(rng.Intn(1 << 24))
			if r.Op == trace.OpWrite {
				r.Vals[lane] = uint64(rng.Intn(1 << 16))
			}
		}
	}
	return r
}

// TestRecordBatchRoundTrip is the codec property test the issue asks
// for: random records (including coalesced header-only ones) encode →
// decode → deep-equal against their canonical wire form.
func TestRecordBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		recs := make([]logging.Record, rng.Intn(64))
		for i := range recs {
			recs[i] = randomRecord(rng)
		}
		p := EncodeRecords(nil, recs)
		out, err := DecodeRecords(p)
		if err != nil {
			t.Fatalf("iter=%d: %v", iter, err)
		}
		if len(out) != len(recs) {
			t.Fatalf("iter=%d: %d records, want %d", iter, len(out), len(recs))
		}
		for i := range recs {
			want := CanonicalRecord(recs[i])
			if !reflect.DeepEqual(out[i], want) {
				t.Fatalf("iter=%d rec=%d:\ngot  %+v\nwant %+v", iter, i, out[i], want)
			}
			// The canonical form must preserve per-lane address semantics.
			for lane := 0; lane < logging.WarpWidth; lane++ {
				if recs[i].Mask&(1<<uint(lane)) == 0 {
					continue
				}
				if got, orig := out[i].LaneAddr(lane), recs[i].LaneAddr(lane); got != orig {
					t.Fatalf("iter=%d rec=%d lane=%d: LaneAddr %#x, want %#x", iter, i, lane, got, orig)
				}
			}
		}
	}
}

// TestDeltaCompression sanity-checks the point of the codec: a
// clustered race table must encode well below its JSON-ish footprint.
func TestDeltaCompression(t *testing.T) {
	var races []core.Race
	for i := 0; i < 100; i++ {
		races = append(races, core.Race{
			Kind:  core.InterBlock,
			Space: logging.SpaceGlobal,
			Block: -1,
			Addr:  0x10000 + uint64(i)*4,
			Prev:  core.Access{TID: vc.TID(i), PC: 120, Write: true},
			Cur:   core.Access{TID: vc.TID(i + 1), PC: 124, Write: true},
			Count: 2,
		})
	}
	p := EncodeSummary(Summary{Status: "done", Kernel: "k", Races: races})
	if perRace := len(p) / len(races); perRace > 16 {
		t.Fatalf("delta encoding averages %d bytes/race, want ≤ 16", perRace)
	}
}

func TestDecodeMalformedPayloads(t *testing.T) {
	// None of the payload decoders may panic or over-allocate on junk.
	junk := [][]byte{
		nil,
		{0xFF},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, // overlong varint
		bytes.Repeat([]byte{0x80}, 32),
		{0x05, 'a', 'b'}, // string length overrun
	}
	for i, p := range junk {
		if _, err := DecodeHello(p); err == nil && len(p) != 0 {
			t.Errorf("junk %d: DecodeHello accepted", i)
		}
		if _, err := DecodeLaunch(p); err == nil {
			t.Errorf("junk %d: DecodeLaunch accepted", i)
		}
		if _, err := DecodeSummary(p); err == nil {
			t.Errorf("junk %d: DecodeSummary accepted", i)
		}
		var rd RaceDecoder
		if _, err := DecodeRace(&rd, p); err == nil {
			t.Errorf("junk %d: DecodeRace accepted", i)
		}
		if _, err := DecodeRecords(p); err == nil && len(p) != 0 {
			t.Errorf("junk %d: DecodeRecords accepted", i)
		}
	}
	// A huge claimed record count must be rejected before allocation.
	huge := appendUvarint(nil, 1<<40)
	if _, err := DecodeRecords(huge); err == nil {
		t.Error("huge record count accepted")
	}
	hugeSum := appendUvarint(nil, 1)        // seq
	hugeSum = appendString(hugeSum, "ok")   // status
	hugeSum = appendString(hugeSum, "")     // error
	hugeSum = appendString(hugeSum, "k")    // kernel
	hugeSum = append(hugeSum, 0)            // flags
	hugeSum = appendUvarint(hugeSum, 1<<40) // race count
	if _, err := DecodeSummary(hugeSum); err == nil {
		t.Error("huge race count accepted")
	}
}
