// Package wire is the streaming binary job protocol shared by the
// client↔daemon and coordinator↔worker links: a length-prefixed,
// CRC-protected frame layer over one hijacked HTTP connection, plus a
// varint/delta payload codec for launches, race reports and event
// records.
//
// The JSON submit/poll API serializes a whole PTX module on every
// submission and a whole report on every poll; this protocol streams
// instead. One connection carries, in order:
//
//	client                       server
//	  prelude (magic+version) →
//	                           ← prelude
//	  HELLO {api key}         →
//	                           ← WELCOME {limits} | REJECT {rate limit}
//	  MOD_BEGIN {len, hash}   →
//	                           ← MOD_STATE have        (warm: skip upload)
//	                           ← MOD_STATE need        (cold: send bytes)
//	  MOD_CHUNK* , MOD_END    →
//	                           ← MOD_STATE ready {hash}
//	  LAUNCH {seq=1}          →  (pipelined: no waiting between launches)
//	  LAUNCH {seq=2}          →
//	                           ← ACCEPT {seq, job id} | REJECT {seq, code, retry-after}
//	                           ← RACE {seq, race}     (as each race is found)
//	                           ← SUMMARY {seq, report} (terminal per launch)
//	  BYE                     →
//
// Every frame is `type(1) ‖ len(u32 LE) ‖ payload ‖ crc32(u32 LE)`,
// with the IEEE CRC computed over type+len+payload and len validated
// against MaxFrame before any allocation. Payloads use uvarint and
// zigzag-delta encoding (PC deltas between races of one report, address
// deltas between lanes of one record span, epoch-style running deltas
// between consecutive races), so a large race report costs a few bytes
// per race instead of a few hundred of JSON.
//
// Decode errors are typed — ErrBadMagic, ErrVersionMismatch,
// ErrFrameOversize, ErrBadCRC, ErrTruncated, ErrMalformed — and never
// panic: the decoder is fuzzed over truncations, corruptions and
// oversize length prefixes (see fuzz_test.go and testdata/fuzz).
package wire

import "errors"

// Protocol identity. The 5-byte prelude (magic ‖ version) opens the
// stream in both directions; a version bump is a wire break, detected
// before any frame is parsed.
const (
	Magic   = "BCWP" // BarraCuda Wire Protocol
	Version = 1
)

// Size limits. MaxFrame bounds a single frame payload and is validated
// against the length prefix before allocating; MaxModule bounds a whole
// chunked PTX upload (matching the JSON API's 16 MiB body cap);
// ChunkSize is the upload granularity clients use.
const (
	MaxFrame  = 4 << 20
	MaxModule = 16 << 20
	ChunkSize = 256 << 10
)

// Frame types, client → server.
const (
	FHello    byte = 0x01 // handshake: API key, client name
	FModBegin byte = 0x02 // open a module upload: total length + optional content hash
	FModChunk byte = 0x03 // raw module bytes
	FModEnd   byte = 0x04 // upload complete
	FLaunch   byte = 0x05 // one pipelined launch (a job submission minus the module)
	FBye      byte = 0x06 // orderly shutdown: server drains in-flight launches first
)

// Frame types, server → client.
const (
	FWelcome  byte = 0x11 // handshake accepted: negotiated limits
	FModState byte = 0x12 // module negotiation: need / have / ready
	FAccept   byte = 0x13 // launch admitted under the queue budget
	FRace     byte = 0x14 // one race, pushed at the moment of discovery
	FSummary  byte = 0x15 // terminal per-launch report (races, stats, shadow counters)
	FReject   byte = 0x16 // launch or handshake rejected: code + Retry-After hint
	FFatal    byte = 0x17 // connection-fatal error; the server closes after sending
)

// Module negotiation states carried by FModState.
const (
	ModNeed  byte = 0 // server wants the bytes: stream MOD_CHUNKs
	ModHave  byte = 1 // content hash matched a resident source: skip the upload
	ModReady byte = 2 // upload complete and hash-verified; module is current
)

// Typed decode errors. The frame reader and payload codec return
// exactly these (wrapped with context); they never panic and never
// allocate beyond the validated length prefix.
var (
	ErrBadMagic        = errors.New("wire: bad magic (not a barracuda stream)")
	ErrVersionMismatch = errors.New("wire: protocol version mismatch")
	ErrFrameOversize   = errors.New("wire: frame length exceeds MaxFrame")
	ErrBadCRC          = errors.New("wire: frame CRC mismatch")
	ErrTruncated       = errors.New("wire: truncated frame")
	ErrMalformed       = errors.New("wire: malformed payload")
)

// Stable reject/fatal codes mirrored from the JSON API's ErrorJSON
// codes, so both surfaces classify failures identically.
const (
	CodeInvalidArgument = "invalid_argument"
	CodeQueueFull       = "queue_full"
	CodeUnavailable     = "unavailable"
	CodeVersionMismatch = "version_mismatch"
)
