package wire

import (
	"bufio"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"time"
)

// UpgradeHeader is the HTTP Upgrade token the /v1/stream endpoint
// switches protocols on.
const UpgradeHeader = "barracuda-stream/1"

// StreamPath is the HTTP endpoint that upgrades to this protocol.
const StreamPath = "/v1/stream"

// ErrUpgradeRefused marks a server that answered the upgrade request
// with something other than 101 — typically an older daemon without the
// streaming endpoint. Callers use it to fall back to the JSON API.
var ErrUpgradeRefused = errors.New("wire: server refused upgrade")

// RejectError is a server rejection surfaced as an error: the
// handshake was refused (rate limit) or a launch could not be encoded.
type RejectError struct {
	Reject Reject
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("wire: rejected (%s): %s", e.Reject.Code, e.Reject.Msg)
}

// FatalError is a connection-fatal server notice surfaced as an error.
type FatalError struct {
	Fatal Fatal
}

func (e *FatalError) Error() string {
	return fmt.Sprintf("wire: fatal (%s): %s", e.Fatal.Code, e.Fatal.Msg)
}

// Event is one server frame delivered by Client.Next, discriminated by
// Type (FAccept, FReject, FRace, FSummary).
type Event struct {
	Type    byte
	Accept  Accept
	Reject  Reject
	Race    RaceEvent
	Summary Summary
}

// Client speaks the streaming protocol against a daemon. Not safe for
// concurrent use: the intended shape is "upload, fire launches, drain
// events", all from one goroutine (the protocol itself is pipelined, so
// single-threaded use loses nothing).
type Client struct {
	conn    net.Conn
	w       *Writer
	r       *Reader
	welcome Welcome
	racedec map[uint64]*RaceDecoder
}

// Dial connects to a daemon's base URL (http://host:port), upgrades to
// the streaming protocol and completes the handshake. A rate-limited
// handshake returns *RejectError carrying the Retry-After hint.
func Dial(baseURL, apiKey string, timeout time.Duration) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("wire: dial: %w", err)
	}
	host := u.Host
	if host == "" {
		host = baseURL
	}
	conn, err := net.DialTimeout("tcp", host, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial: %w", err)
	}
	c, err := Handshake(conn, host, apiKey)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Handshake runs the HTTP upgrade and protocol handshake over an
// established connection (exposed separately so tests and byte-counting
// wrappers can supply their own conn).
func Handshake(conn net.Conn, host, apiKey string) (*Client, error) {
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nConnection: Upgrade\r\nUpgrade: %s\r\n\r\n",
		StreamPath, host, UpgradeHeader)
	if _, err := conn.Write([]byte(req)); err != nil {
		return nil, fmt.Errorf("wire: upgrade request: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		return nil, fmt.Errorf("wire: upgrade response: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		resp.Body.Close()
		return nil, fmt.Errorf("%w: %s", ErrUpgradeRefused, resp.Status)
	}
	// The response has no body; the stream begins immediately after the
	// header block, and br may have buffered the first prelude bytes.
	c := &Client{conn: conn, w: NewWriter(conn), r: &Reader{br: br}, racedec: map[uint64]*RaceDecoder{}}
	if err := WritePrelude(conn); err != nil {
		return nil, err
	}
	if _, err := ReadPrelude(br); err != nil {
		return nil, err
	}
	if err := c.w.WriteFrame(FHello, EncodeHello(Hello{APIKey: apiKey, Client: "barracuda-go"})); err != nil {
		return nil, err
	}
	f, err := c.r.ReadFrame()
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case FWelcome:
		w, err := DecodeWelcome(f.Payload)
		if err != nil {
			return nil, err
		}
		c.welcome = w
		return c, nil
	case FReject:
		rej, err := DecodeReject(f.Payload)
		if err != nil {
			return nil, err
		}
		return nil, &RejectError{Reject: rej}
	case FFatal:
		ft, err := DecodeFatal(f.Payload)
		if err != nil {
			return nil, err
		}
		return nil, &FatalError{Fatal: ft}
	default:
		return nil, fmt.Errorf("%w: unexpected handshake frame %#x", ErrMalformed, f.Type)
	}
}

// Welcome returns the limits the server granted at handshake.
func (c *Client) Welcome() Welcome { return c.welcome }

// UploadModule makes src the connection's current module, skipping the
// byte transfer when the server already holds the content (warm hit).
// Returns the content hash and whether the upload was skipped.
func (c *Client) UploadModule(src []byte) (hash [32]byte, warm bool, err error) {
	if len(src) > MaxModule {
		return hash, false, fmt.Errorf("wire: module %d bytes exceeds MaxModule %d", len(src), MaxModule)
	}
	hash = sha256.Sum256(src)
	if err := c.w.WriteFrame(FModBegin, EncodeModBegin(ModBegin{TotalLen: uint64(len(src)), Hash: hash[:]})); err != nil {
		return hash, false, err
	}
	st, err := c.readModState()
	if err != nil {
		return hash, false, err
	}
	if st.State == ModHave {
		return hash, true, nil
	}
	if st.State != ModNeed {
		return hash, false, fmt.Errorf("%w: unexpected module state %d", ErrMalformed, st.State)
	}
	for off := 0; off < len(src); off += ChunkSize {
		end := off + ChunkSize
		if end > len(src) {
			end = len(src)
		}
		if err := c.w.WriteFrame(FModChunk, src[off:end]); err != nil {
			return hash, false, err
		}
	}
	if err := c.w.WriteFrame(FModEnd, nil); err != nil {
		return hash, false, err
	}
	st, err = c.readModState()
	if err != nil {
		return hash, false, err
	}
	if st.State != ModReady {
		return hash, false, fmt.Errorf("%w: upload not acknowledged (state %d)", ErrMalformed, st.State)
	}
	return hash, false, nil
}

func (c *Client) readModState() (ModState, error) {
	f, err := c.r.ReadFrame()
	if err != nil {
		return ModState{}, err
	}
	switch f.Type {
	case FModState:
		return DecodeModState(f.Payload)
	case FReject:
		rej, err := DecodeReject(f.Payload)
		if err != nil {
			return ModState{}, err
		}
		return ModState{}, &RejectError{Reject: rej}
	case FFatal:
		ft, err := DecodeFatal(f.Payload)
		if err != nil {
			return ModState{}, err
		}
		return ModState{}, &FatalError{Fatal: ft}
	default:
		return ModState{}, fmt.Errorf("%w: unexpected frame %#x during upload", ErrMalformed, f.Type)
	}
}

// Launch submits one pipelined launch against the current module. It
// does not wait for a response; pair with Next.
func (c *Client) Launch(spec LaunchSpec) error {
	return c.w.WriteFrame(FLaunch, EncodeLaunch(spec))
}

// Next returns the next server event. Race frames are decoded against
// the per-launch delta state Next maintains internally. A server FFatal
// is surfaced as *FatalError.
func (c *Client) Next() (Event, error) {
	f, err := c.r.ReadFrame()
	if err != nil {
		return Event{}, err
	}
	switch f.Type {
	case FAccept:
		a, err := DecodeAccept(f.Payload)
		return Event{Type: FAccept, Accept: a}, err
	case FReject:
		rej, err := DecodeReject(f.Payload)
		return Event{Type: FReject, Reject: rej}, err
	case FRace:
		seq, err := PeekSeq(f.Payload)
		if err != nil {
			return Event{}, err
		}
		rd := c.racedec[seq]
		if rd == nil {
			rd = &RaceDecoder{}
			c.racedec[seq] = rd
		}
		ev, err := DecodeRace(rd, f.Payload)
		return Event{Type: FRace, Race: ev}, err
	case FSummary:
		s, err := DecodeSummary(f.Payload)
		if err == nil {
			delete(c.racedec, s.Seq)
		}
		return Event{Type: FSummary, Summary: s}, err
	case FFatal:
		ft, err := DecodeFatal(f.Payload)
		if err != nil {
			return Event{}, err
		}
		return Event{}, &FatalError{Fatal: ft}
	default:
		return Event{}, fmt.Errorf("%w: unexpected server frame %#x", ErrMalformed, f.Type)
	}
}

// Bye sends the orderly-shutdown frame. The server finishes in-flight
// launches (their events still arrive via Next) and then closes.
func (c *Client) Bye() error { return c.w.WriteFrame(FBye, nil) }

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }
