package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// knownErr reports whether err is one of the decoder's typed errors (or
// a clean EOF). Anything else escaping the decoder is a bug.
func knownErr(err error) bool {
	return err == nil || err == io.EOF ||
		errors.Is(err, ErrBadMagic) ||
		errors.Is(err, ErrVersionMismatch) ||
		errors.Is(err, ErrFrameOversize) ||
		errors.Is(err, ErrBadCRC) ||
		errors.Is(err, ErrTruncated) ||
		errors.Is(err, ErrMalformed)
}

// FuzzFrames feeds arbitrary bytes through the full receive path — the
// prelude check, the frame reader, and every payload decoder — and
// asserts three invariants: no panics, only typed errors, and no
// allocation beyond the validated length prefix (enforced structurally:
// ReadFrame checks the prefix against MaxFrame before make, and the
// count-prefixed payload decoders check claimed counts against the
// bytes actually present). The seed corpus in testdata/fuzz/FuzzFrames
// covers truncated frames, corrupted CRCs, oversize length prefixes and
// version-mismatch handshakes, and runs on every plain `go test` as a
// regression suite.
func FuzzFrames(f *testing.F) {
	// A well-formed stream: prelude + hello + launch.
	var good bytes.Buffer
	WritePrelude(&good)
	w := NewWriter(&good)
	w.WriteFrame(FHello, EncodeHello(Hello{APIKey: "k", Client: "fuzz"}))
	w.WriteFrame(FLaunch, EncodeLaunch(LaunchSpec{Seq: 1, Kernel: "k", Grid: 1, Block: 32, Buffers: []int{64}}))
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		if _, err := ReadPrelude(r); !knownErr(err) {
			t.Fatalf("ReadPrelude: untyped error %v", err)
		} else if err != nil {
			// Still fuzz the frame layer on streams with a bad prelude.
			r = bytes.NewReader(data)
		}
		fr := NewReader(r)
		for i := 0; i < 64; i++ {
			frame, err := fr.ReadFrame()
			if !knownErr(err) {
				t.Fatalf("ReadFrame: untyped error %v", err)
			}
			if err != nil {
				break
			}
			// Run every payload decoder over the payload regardless of the
			// frame type byte: a hostile peer controls both.
			p := frame.Payload
			check := func(what string, e error) {
				if !knownErr(e) {
					t.Fatalf("%s: untyped error %v", what, e)
				}
			}
			_, e := DecodeHello(p)
			check("DecodeHello", e)
			_, e = DecodeWelcome(p)
			check("DecodeWelcome", e)
			_, e = DecodeModBegin(p)
			check("DecodeModBegin", e)
			_, e = DecodeModState(p)
			check("DecodeModState", e)
			_, e = DecodeLaunch(p)
			check("DecodeLaunch", e)
			_, e = DecodeAccept(p)
			check("DecodeAccept", e)
			_, e = DecodeReject(p)
			check("DecodeReject", e)
			_, e = DecodeFatal(p)
			check("DecodeFatal", e)
			var rd RaceDecoder
			_, e = DecodeRace(&rd, p)
			check("DecodeRace", e)
			_, e = DecodeSummary(p)
			check("DecodeSummary", e)
			_, e = DecodeRecords(p)
			check("DecodeRecords", e)
		}
	})
}
