package wire

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"barracuda/internal/core"
	"barracuda/internal/logging"
	"barracuda/internal/trace"
	"barracuda/internal/vc"
)

// ---- primitives -----------------------------------------------------
//
// All payloads are built from two primitives: unsigned varints
// (binary.AppendUvarint) and zigzag-folded signed varints for deltas.
// Decoding goes through dec, which turns every overrun or non-minimal
// encoding into ErrMalformed instead of panicking.

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v)<<1^uint64(v>>63))
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b []byte, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// dec is a bounds-checked cursor over one frame payload.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrMalformed, what)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) zigzag() int64 {
	u := d.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("bytes length")
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *dec) string() string { return string(d.bytes()) }

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.b))
	}
	return nil
}

// ---- handshake ------------------------------------------------------

// Hello is the client handshake payload. The API key identifies the
// tenant for rate limiting and accounting; empty means anonymous.
type Hello struct {
	APIKey string
	Client string // free-form client identification, for logs
}

// EncodeHello renders a Hello payload.
func EncodeHello(h Hello) []byte {
	b := appendString(nil, h.APIKey)
	return appendString(b, h.Client)
}

// DecodeHello parses a Hello payload.
func DecodeHello(p []byte) (Hello, error) {
	d := &dec{b: p}
	h := Hello{APIKey: d.string(), Client: d.string()}
	return h, d.done()
}

// Welcome is the server handshake payload: the negotiated limits the
// client must respect on this connection.
type Welcome struct {
	MaxFrame  uint64
	MaxModule uint64
}

// EncodeWelcome renders a Welcome payload.
func EncodeWelcome(w Welcome) []byte {
	b := appendUvarint(nil, w.MaxFrame)
	return appendUvarint(b, w.MaxModule)
}

// DecodeWelcome parses a Welcome payload.
func DecodeWelcome(p []byte) (Welcome, error) {
	d := &dec{b: p}
	w := Welcome{MaxFrame: d.uvarint(), MaxModule: d.uvarint()}
	return w, d.done()
}

// ---- module upload --------------------------------------------------

// ModBegin opens a module upload. Hash is the SHA-256 of the module
// source when the client knows it (it always does for on-disk files);
// a declared hash lets the server short-circuit the upload entirely
// when the source is already resident. Empty Hash means "undeclared":
// the server computes it incrementally as chunks arrive.
type ModBegin struct {
	TotalLen uint64
	Hash     []byte // empty or 32 bytes
}

// EncodeModBegin renders a ModBegin payload.
func EncodeModBegin(m ModBegin) []byte {
	b := appendUvarint(nil, m.TotalLen)
	return appendBytes(b, m.Hash)
}

// DecodeModBegin parses a ModBegin payload.
func DecodeModBegin(p []byte) (ModBegin, error) {
	d := &dec{b: p}
	m := ModBegin{TotalLen: d.uvarint()}
	h := d.bytes()
	if len(h) > 0 {
		m.Hash = append([]byte(nil), h...)
	}
	if d.err == nil && len(m.Hash) != 0 && len(m.Hash) != 32 {
		d.fail("hash must be absent or 32 bytes")
	}
	return m, d.done()
}

// ModState is the server's module negotiation answer.
type ModState struct {
	State byte   // ModNeed | ModHave | ModReady
	Hash  []byte // the content hash the server resolved (ModHave/ModReady)
}

// EncodeModState renders a ModState payload.
func EncodeModState(m ModState) []byte {
	b := []byte{m.State}
	return appendBytes(b, m.Hash)
}

// DecodeModState parses a ModState payload.
func DecodeModState(p []byte) (ModState, error) {
	d := &dec{b: p}
	m := ModState{State: d.byte()}
	h := d.bytes()
	if len(h) > 0 {
		m.Hash = append([]byte(nil), h...)
	}
	if d.err == nil && m.State > ModReady {
		d.fail("unknown module state")
	}
	return m, d.done()
}

// ---- launches -------------------------------------------------------

// ConfigSpec is the detector configuration of one launch, mirroring the
// JSON API's config object field for field (the flag bits cover the
// booleans).
type ConfigSpec struct {
	Queues            int
	QueueCap          int
	Granularity       int
	MaxRaces          int
	ShadowCapBytes    int64
	FullVC            bool
	NoPrune           bool
	StaticPrune       bool
	NoSameValueFilter bool
	PerCellShadow     bool
	Ownership         bool
	ProducerFilter    bool
}

const (
	cfgFullVC = 1 << iota
	cfgNoPrune
	cfgStaticPrune
	cfgNoSameValue
	cfgPerCell
	cfgOwnership
	cfgProducerFilter
)

func appendConfig(b []byte, c ConfigSpec) []byte {
	var flags byte
	if c.FullVC {
		flags |= cfgFullVC
	}
	if c.NoPrune {
		flags |= cfgNoPrune
	}
	if c.StaticPrune {
		flags |= cfgStaticPrune
	}
	if c.NoSameValueFilter {
		flags |= cfgNoSameValue
	}
	if c.PerCellShadow {
		flags |= cfgPerCell
	}
	if c.Ownership {
		flags |= cfgOwnership
	}
	if c.ProducerFilter {
		flags |= cfgProducerFilter
	}
	b = append(b, flags)
	b = appendUvarint(b, uint64(c.Queues))
	b = appendUvarint(b, uint64(c.QueueCap))
	b = appendUvarint(b, uint64(c.Granularity))
	b = appendUvarint(b, uint64(c.MaxRaces))
	return appendZigzag(b, c.ShadowCapBytes)
}

func (d *dec) config() ConfigSpec {
	flags := d.byte()
	return ConfigSpec{
		FullVC:            flags&cfgFullVC != 0,
		NoPrune:           flags&cfgNoPrune != 0,
		StaticPrune:       flags&cfgStaticPrune != 0,
		NoSameValueFilter: flags&cfgNoSameValue != 0,
		PerCellShadow:     flags&cfgPerCell != 0,
		Ownership:         flags&cfgOwnership != 0,
		ProducerFilter:    flags&cfgProducerFilter != 0,
		Queues:            int(d.uvarint()),
		QueueCap:          int(d.uvarint()),
		Granularity:       int(d.uvarint()),
		MaxRaces:          int(d.uvarint()),
		ShadowCapBytes:    d.zigzag(),
	}
}

// LaunchSpec is one pipelined launch: a job submission minus the module
// source, which traveled (once) in the upload phase. Seq is the
// client-chosen pipeline sequence number every response frame echoes.
type LaunchSpec struct {
	Seq       uint64
	Kernel    string
	Grid      int
	Block     int
	WarpSize  int
	TimeoutMS int64
	MaxInstrs uint64
	Buffers   []int
	Config    ConfigSpec
}

// EncodeLaunch renders a LaunchSpec payload.
func EncodeLaunch(l LaunchSpec) []byte {
	b := appendUvarint(nil, l.Seq)
	b = appendString(b, l.Kernel)
	b = appendUvarint(b, uint64(l.Grid))
	b = appendUvarint(b, uint64(l.Block))
	b = appendUvarint(b, uint64(l.WarpSize))
	b = appendUvarint(b, uint64(l.TimeoutMS))
	b = appendUvarint(b, l.MaxInstrs)
	b = appendUvarint(b, uint64(len(l.Buffers)))
	for _, n := range l.Buffers {
		b = appendUvarint(b, uint64(n))
	}
	return appendConfig(b, l.Config)
}

// DecodeLaunch parses a LaunchSpec payload.
func DecodeLaunch(p []byte) (LaunchSpec, error) {
	d := &dec{b: p}
	l := LaunchSpec{
		Seq:       d.uvarint(),
		Kernel:    d.string(),
		Grid:      int(d.uvarint()),
		Block:     int(d.uvarint()),
		WarpSize:  int(d.uvarint()),
		TimeoutMS: int64(d.uvarint()),
		MaxInstrs: d.uvarint(),
	}
	nb := d.uvarint()
	if nb > uint64(len(d.b)) { // each buffer size costs ≥1 byte
		d.fail("buffer count")
		return l, d.done()
	}
	for i := uint64(0); i < nb && d.err == nil; i++ {
		l.Buffers = append(l.Buffers, int(d.uvarint()))
	}
	l.Config = d.config()
	return l, d.done()
}

// Accept acknowledges an admitted launch.
type Accept struct {
	Seq   uint64
	JobID string
}

// EncodeAccept renders an Accept payload.
func EncodeAccept(a Accept) []byte {
	b := appendUvarint(nil, a.Seq)
	return appendString(b, a.JobID)
}

// DecodeAccept parses an Accept payload.
func DecodeAccept(p []byte) (Accept, error) {
	d := &dec{b: p}
	a := Accept{Seq: d.uvarint(), JobID: d.string()}
	return a, d.done()
}

// Reject refuses a launch (Seq > 0) or the whole handshake (Seq == 0),
// with the JSON API's machine-readable code and a Retry-After hint.
type Reject struct {
	Seq          uint64
	Code         string
	Msg          string
	RetryAfterMS uint64
}

// EncodeReject renders a Reject payload.
func EncodeReject(r Reject) []byte {
	b := appendUvarint(nil, r.Seq)
	b = appendString(b, r.Code)
	b = appendString(b, r.Msg)
	return appendUvarint(b, r.RetryAfterMS)
}

// DecodeReject parses a Reject payload.
func DecodeReject(p []byte) (Reject, error) {
	d := &dec{b: p}
	r := Reject{Seq: d.uvarint(), Code: d.string(), Msg: d.string(), RetryAfterMS: d.uvarint()}
	return r, d.done()
}

// Fatal is a connection-fatal error notice.
type Fatal struct {
	Code string
	Msg  string
}

// EncodeFatal renders a Fatal payload.
func EncodeFatal(f Fatal) []byte {
	b := appendString(nil, f.Code)
	return appendString(b, f.Msg)
}

// DecodeFatal parses a Fatal payload.
func DecodeFatal(p []byte) (Fatal, error) {
	d := &dec{b: p}
	f := Fatal{Code: d.string(), Msg: d.string()}
	return f, d.done()
}

// ---- races ----------------------------------------------------------
//
// Races are delta-encoded against the previous race in the same stream:
// within one report the PCs cluster tightly (the same kernel) and the
// addresses cluster by buffer, so consecutive deltas are one or two
// bytes where absolute values would be five to ten.

const (
	raceFPrevWrite = 1 << iota
	raceFPrevAtomic
	raceFCurWrite
	raceFCurAtomic
	raceFSameInstr
)

// RaceEncoder holds the running delta state of one race stream. The
// zero value starts a stream; the decoder mirrors it exactly.
type RaceEncoder struct {
	prevPC  uint32
	curPC   uint32
	addr    uint64
	prevTID int64
	curTID  int64
}

// Append delta-encodes one race onto b.
func (e *RaceEncoder) Append(b []byte, r core.Race) []byte {
	var flags byte
	if r.Prev.Write {
		flags |= raceFPrevWrite
	}
	if r.Prev.Atomic {
		flags |= raceFPrevAtomic
	}
	if r.Cur.Write {
		flags |= raceFCurWrite
	}
	if r.Cur.Atomic {
		flags |= raceFCurAtomic
	}
	if r.SameInstr {
		flags |= raceFSameInstr
	}
	b = append(b, byte(r.Kind), byte(r.Space), flags)
	b = appendZigzag(b, int64(r.Block))
	b = appendZigzag(b, int64(r.Prev.PC)-int64(e.prevPC))
	b = appendZigzag(b, int64(r.Cur.PC)-int64(e.curPC))
	b = appendZigzag(b, int64(r.Addr)-int64(e.addr))
	b = appendZigzag(b, int64(r.Prev.TID)-e.prevTID)
	b = appendZigzag(b, int64(r.Cur.TID)-e.curTID)
	b = appendUvarint(b, uint64(r.Count))
	e.prevPC, e.curPC = r.Prev.PC, r.Cur.PC
	e.addr = r.Addr
	e.prevTID, e.curTID = int64(r.Prev.TID), int64(r.Cur.TID)
	return b
}

// RaceDecoder mirrors RaceEncoder on the receive side.
type RaceDecoder struct {
	e RaceEncoder
}

func (rd *RaceDecoder) race(d *dec) core.Race {
	kind := d.byte()
	space := d.byte()
	flags := d.byte()
	r := core.Race{
		Kind:      core.RaceKind(kind),
		Space:     logging.SpaceID(space),
		Block:     int32(d.zigzag()),
		SameInstr: flags&raceFSameInstr != 0,
	}
	prevPC := int64(rd.e.prevPC) + d.zigzag()
	curPC := int64(rd.e.curPC) + d.zigzag()
	addr := int64(rd.e.addr) + d.zigzag()
	prevTID := rd.e.prevTID + d.zigzag()
	curTID := rd.e.curTID + d.zigzag()
	r.Prev = core.Access{TID: vc.TID(prevTID), PC: uint32(prevPC), Write: flags&raceFPrevWrite != 0, Atomic: flags&raceFPrevAtomic != 0}
	r.Cur = core.Access{TID: vc.TID(curTID), PC: uint32(curPC), Write: flags&raceFCurWrite != 0, Atomic: flags&raceFCurAtomic != 0}
	r.Addr = uint64(addr)
	r.Count = int(d.uvarint())
	rd.e.prevPC, rd.e.curPC = uint32(prevPC), uint32(curPC)
	rd.e.addr = uint64(addr)
	rd.e.prevTID, rd.e.curTID = prevTID, curTID
	return r
}

// RaceEvent is an incremental race frame: the race plus the launch it
// belongs to. Each launch's race stream has its own delta state on both
// sides, keyed by Seq.
type RaceEvent struct {
	Seq  uint64
	Race core.Race
}

// EncodeRace renders a RaceEvent payload using (and advancing) the
// launch's encoder state.
func EncodeRace(e *RaceEncoder, ev RaceEvent) []byte {
	b := appendUvarint(nil, ev.Seq)
	return e.Append(b, ev.Race)
}

// DecodeRace parses a RaceEvent payload using (and advancing) the
// launch's decoder state, which the caller looks up by the Seq returned
// in the event. PeekSeq extracts the Seq without consuming state.
func DecodeRace(rd *RaceDecoder, p []byte) (RaceEvent, error) {
	d := &dec{b: p}
	ev := RaceEvent{Seq: d.uvarint()}
	ev.Race = rd.race(d)
	return ev, d.done()
}

// PeekSeq reads the leading launch sequence number of a RaceEvent or
// Summary payload without consuming decoder state.
func PeekSeq(p []byte) (uint64, error) {
	d := &dec{b: p}
	s := d.uvarint()
	return s, d.err
}

// ---- summary --------------------------------------------------------

// Divergence is one barrier-divergence report on the wire.
type Divergence struct {
	Block int
	Warp  int
	PC    uint32
	Mask  uint32
}

// Summary is the terminal frame of one launch: the full final report
// (the incremental race frames are a low-latency preview; the summary
// is authoritative, carrying final dynamic counts and ordering) plus
// the run's stats and shadow counters. Status/Error mirror the JSON
// JobInfo fields.
type Summary struct {
	Seq      uint64
	Status   string // done | failed | timeout
	Error    string
	Kernel   string
	CacheHit bool

	Races       []core.Race
	Divergences []Divergence

	RecordsSeen       uint64
	WarpInstrs        uint64
	SameValueFiltered uint64
	DetectUS          uint64 // detect wall time, microseconds
	QueueWaitUS       uint64
	TotalUS           uint64

	ShadowPeakResident uint64
	ShadowLiveEvicts   uint64
	PrecisionDegraded  bool

	// Producer-filter activity of the run (zero when the filter was off).
	FilterSuppressed uint64 // records kept off the queue (hits + static elides)
	FilterFlushes    uint64 // OpFlush reconciliation records emitted
}

// EncodeSummary renders a Summary payload. The race table uses a fresh
// delta stream (independent of the incremental frames, which may have
// raced ahead in a different discovery order).
func EncodeSummary(s Summary) []byte {
	b := appendUvarint(nil, s.Seq)
	b = appendString(b, s.Status)
	b = appendString(b, s.Error)
	b = appendString(b, s.Kernel)
	var flags byte
	if s.CacheHit {
		flags |= 1
	}
	if s.PrecisionDegraded {
		flags |= 2
	}
	b = append(b, flags)
	b = appendUvarint(b, uint64(len(s.Races)))
	var enc RaceEncoder
	for _, r := range s.Races {
		b = enc.Append(b, r)
	}
	b = appendUvarint(b, uint64(len(s.Divergences)))
	var prevPC int64
	for _, dv := range s.Divergences {
		b = appendUvarint(b, uint64(dv.Block))
		b = appendUvarint(b, uint64(dv.Warp))
		b = appendZigzag(b, int64(dv.PC)-prevPC)
		b = appendUvarint(b, uint64(dv.Mask))
		prevPC = int64(dv.PC)
	}
	b = appendUvarint(b, s.RecordsSeen)
	b = appendUvarint(b, s.WarpInstrs)
	b = appendUvarint(b, s.SameValueFiltered)
	b = appendUvarint(b, s.DetectUS)
	b = appendUvarint(b, s.QueueWaitUS)
	b = appendUvarint(b, s.TotalUS)
	b = appendUvarint(b, s.ShadowPeakResident)
	b = appendUvarint(b, s.ShadowLiveEvicts)
	b = appendUvarint(b, s.FilterSuppressed)
	return appendUvarint(b, s.FilterFlushes)
}

// DecodeSummary parses a Summary payload.
func DecodeSummary(p []byte) (Summary, error) {
	d := &dec{b: p}
	s := Summary{
		Seq:    d.uvarint(),
		Status: d.string(),
		Error:  d.string(),
		Kernel: d.string(),
	}
	flags := d.byte()
	s.CacheHit = flags&1 != 0
	s.PrecisionDegraded = flags&2 != 0
	nr := d.uvarint()
	if nr > uint64(len(d.b)) { // each race costs ≥ 10 bytes
		d.fail("race count")
		return s, d.done()
	}
	var rd RaceDecoder
	for i := uint64(0); i < nr && d.err == nil; i++ {
		s.Races = append(s.Races, rd.race(d))
	}
	nd := d.uvarint()
	if nd > uint64(len(d.b)) {
		d.fail("divergence count")
		return s, d.done()
	}
	var prevPC int64
	for i := uint64(0); i < nd && d.err == nil; i++ {
		dv := Divergence{Block: int(d.uvarint()), Warp: int(d.uvarint())}
		pc := prevPC + d.zigzag()
		dv.PC = uint32(pc)
		prevPC = pc
		dv.Mask = uint32(d.uvarint())
		s.Divergences = append(s.Divergences, dv)
	}
	s.RecordsSeen = d.uvarint()
	s.WarpInstrs = d.uvarint()
	s.SameValueFiltered = d.uvarint()
	s.DetectUS = d.uvarint()
	s.QueueWaitUS = d.uvarint()
	s.TotalUS = d.uvarint()
	s.ShadowPeakResident = d.uvarint()
	s.ShadowLiveEvicts = d.uvarint()
	s.FilterSuppressed = d.uvarint()
	s.FilterFlushes = d.uvarint()
	return s, d.done()
}

// Report reassembles a core.Report from a summary — the client-side
// inverse of the server's projection. CanonicalDigest over the result
// is byte-identical to the digest of the server-side report: the
// summary carries every field the digest covers (races with counts,
// divergences, RecordsSeen).
func (s Summary) Report() *core.Report {
	rep := &core.Report{
		RecordsSeen:       s.RecordsSeen,
		SameValueGag:      s.SameValueFiltered,
		PrecisionDegraded: s.PrecisionDegraded,
	}
	rep.Races = append(rep.Races, s.Races...)
	for _, dv := range s.Divergences {
		rep.Divergences = append(rep.Divergences, core.BarrierDivergence{
			Block: dv.Block, Warp: dv.Warp, PC: dv.PC, Mask: dv.Mask,
		})
	}
	return rep
}

// ---- event records --------------------------------------------------
//
// The record codec serializes logging.Record batches — the capture
// streams behind detector.Capture/Replay and the fleet's future record
// shipping — with the same wire discipline the in-process transport
// uses: coalesced records ship header-only (address array reconstructed
// from Base+Mask+Size, values only for writes), and everything varies
// as deltas (PC deltas between consecutive records, address deltas
// between consecutive lanes of one record's span).

// CanonicalRecord normalizes a record to its wire form: the fields a
// decoded record is guaranteed to reproduce. Coalesced records drop the
// address array (LaneAddr reconstructs it) and drop values unless the
// record is a write; non-coalesced records keep active lanes only.
// Consumers already obey exactly these rules for the in-process
// transport (see logging's copyRecord), so round-tripping a record
// through the codec and comparing against CanonicalRecord is the
// correctness contract.
func CanonicalRecord(r logging.Record) logging.Record {
	out := r
	if r.Coalesced() {
		out.Addrs = [logging.WarpWidth]uint64{}
		if r.Op != trace.OpWrite {
			out.Vals = [logging.WarpWidth]uint64{}
		}
		return out
	}
	for lane := 0; lane < logging.WarpWidth; lane++ {
		if r.Mask&(1<<uint(lane)) == 0 {
			out.Addrs[lane] = 0
			out.Vals[lane] = 0
		} else if r.Op != trace.OpWrite {
			out.Vals[lane] = 0
		}
	}
	return out
}

// EncodeRecords appends a delta-encoded batch of records to dst.
func EncodeRecords(dst []byte, recs []logging.Record) []byte {
	b := appendUvarint(dst, uint64(len(recs)))
	var prevPC, prevWarp, prevBlock, prevSeq int64
	var prevAddr int64
	for i := range recs {
		r := &recs[i]
		b = append(b, byte(r.Op), byte(r.Space), r.Size, r.Flags)
		b = appendUvarint(b, uint64(r.Mask))
		b = appendZigzag(b, int64(r.Warp)-prevWarp)
		b = appendZigzag(b, int64(r.Block)-prevBlock)
		b = appendZigzag(b, int64(r.PC)-prevPC)
		b = appendZigzag(b, int64(r.Seq)-prevSeq)
		prevWarp, prevBlock, prevPC, prevSeq = int64(r.Warp), int64(r.Block), int64(r.PC), int64(r.Seq)
		if r.Coalesced() {
			b = appendZigzag(b, int64(r.Base)-prevAddr)
			prevAddr = int64(r.Base)
		} else {
			// Per-lane addresses as intra-span deltas: consecutive active
			// lanes of one record usually differ by the access size.
			last := prevAddr
			for m := r.Mask; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				a := int64(r.Addrs[lane])
				b = appendZigzag(b, a-last)
				last = a
			}
			if r.Mask != 0 {
				prevAddr = last
			}
		}
		if r.Op == trace.OpWrite {
			for m := r.Mask; m != 0; m &= m - 1 {
				b = appendUvarint(b, r.Vals[bits.TrailingZeros32(m)])
			}
		}
	}
	return b
}

// DecodeRecords parses a record batch. Decoded records satisfy the
// CanonicalRecord contract: use LaneAddr, and only read Vals of writes.
func DecodeRecords(p []byte) ([]logging.Record, error) {
	d := &dec{b: p}
	n := d.uvarint()
	// Each record costs ≥ 9 bytes on the wire; reject counts the payload
	// cannot possibly hold before allocating.
	if n > uint64(len(d.b))/9+1 {
		d.fail("record count")
		return nil, d.done()
	}
	recs := make([]logging.Record, 0, n)
	var prevPC, prevWarp, prevBlock, prevSeq int64
	var prevAddr int64
	for i := uint64(0); i < n && d.err == nil; i++ {
		var r logging.Record
		r.Op = trace.OpKind(d.byte())
		r.Space = logging.SpaceID(d.byte())
		r.Size = d.byte()
		r.Flags = d.byte()
		r.Mask = uint32(d.uvarint())
		prevWarp += d.zigzag()
		prevBlock += d.zigzag()
		prevPC += d.zigzag()
		prevSeq += d.zigzag()
		r.Warp, r.Block = uint32(prevWarp), uint32(prevBlock)
		r.PC, r.Seq = uint32(prevPC), uint64(prevSeq)
		if r.Coalesced() {
			prevAddr += d.zigzag()
			r.Base = uint64(prevAddr)
		} else {
			last := prevAddr
			for m := r.Mask; m != 0; m &= m - 1 {
				lane := bits.TrailingZeros32(m)
				last += d.zigzag()
				r.Addrs[lane] = uint64(last)
			}
			if r.Mask != 0 {
				prevAddr = last
			}
		}
		if r.Op == trace.OpWrite {
			for m := r.Mask; m != 0; m &= m - 1 {
				r.Vals[bits.TrailingZeros32(m)] = d.uvarint()
			}
		}
		recs = append(recs, r)
	}
	return recs, d.done()
}
