package wire

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"barracuda/internal/logging"
	"barracuda/internal/trace"
)

// recordSeeds builds the representative batches the FuzzRecords corpus
// is grown from: per-lane spans, coalesced reads and writes, sync
// records carrying Seq, and an OpFlush suppression-count record — every
// encoding branch EncodeRecords has.
func recordSeeds() [][]logging.Record {
	laneRead := logging.Record{
		Op: trace.OpRead, Space: logging.SpaceGlobal, Size: 4,
		Mask: 0x0000ffff, Warp: 3, Block: 1, PC: 42,
	}
	for l := 0; l < 16; l++ {
		laneRead.Addrs[l] = 0x10000 + uint64(l)*4
	}
	laneWrite := logging.Record{
		Op: trace.OpWrite, Space: logging.SpaceShared, Size: 4,
		Mask: 0x5, Warp: 3, Block: 1, PC: 43,
	}
	laneWrite.Addrs[0], laneWrite.Addrs[2] = 0x200, 0x208
	laneWrite.Vals[0], laneWrite.Vals[2] = 7, 7
	coalRead := logging.Record{
		Op: trace.OpRead, Space: logging.SpaceGlobal, Size: 8,
		Flags: logging.FlagCoalesced, Mask: 0xffffffff,
		Warp: 4, Block: 2, PC: 44, Base: 0x7f0000,
	}
	coalWrite := logging.Record{
		Op: trace.OpWrite, Space: logging.SpaceGlobal, Size: 4,
		Flags: logging.FlagCoalesced, Mask: 0xff,
		Warp: 4, Block: 2, PC: 45, Base: 0x7f8000,
	}
	for l := 0; l < 8; l++ {
		coalWrite.Vals[l] = uint64(l) * 3
	}
	release := logging.Record{
		Op: trace.OpRelBlk, Space: logging.SpaceShared,
		Mask: 0xffffffff, Warp: 5, Block: 2, PC: 46, Seq: 9001,
	}
	flush := logging.Record{
		Op: trace.OpFlush, Warp: 3, Block: 1, Seq: 1234,
	}
	return [][]logging.Record{
		nil,
		{laneRead},
		{laneRead, laneWrite, coalRead, coalWrite},
		{release, flush},
		{coalWrite, coalWrite, coalWrite}, // delta chains with zero deltas
	}
}

// FuzzRecords hammers the record-batch codec, the one payload format
// carrying per-lane data. Two invariants beyond FuzzFrames' no-panic /
// typed-error checks:
//
//  1. Decoding never over-allocates: the claimed record count is checked
//     against the bytes present before the batch is built.
//  2. Decode → encode → decode is the identity. Decoded records are in
//     canonical form (inactive lanes zeroed, read Vals zeroed), which is
//     exactly the form EncodeRecords expects, so any fixed point the
//     fuzzer finds that doesn't survive a round trip is a real codec bug
//     (lost lanes, broken delta chains, flag-dependent field drift).
func FuzzRecords(f *testing.F) {
	for _, batch := range recordSeeds() {
		f.Add(EncodeRecords(nil, batch))
	}
	// Hostile headers: a count bomb and a truncated batch.
	f.Add(append(appendUvarint(nil, 1<<40), 0, 0, 0, 0))
	f.Add(EncodeRecords(nil, recordSeeds()[2])[:20])

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeRecords(data)
		if !knownErr(err) {
			t.Fatalf("DecodeRecords: untyped error %v", err)
		}
		if err != nil {
			return
		}
		wire := EncodeRecords(nil, recs)
		again, err := DecodeRecords(wire)
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed batch length: %d → %d", len(recs), len(again))
		}
		for i := range recs {
			if !reflect.DeepEqual(recs[i], again[i]) {
				t.Fatalf("record %d not a round-trip fixed point:\nfirst:  %+v\nsecond: %+v", i, recs[i], again[i])
			}
		}
	})
}

// TestRecordSeedsRoundTrip keeps the seed batches honest on every plain
// `go test` run: each must encode and decode back exactly.
func TestRecordSeedsRoundTrip(t *testing.T) {
	for i, batch := range recordSeeds() {
		wire := EncodeRecords(nil, batch)
		got, err := DecodeRecords(wire)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if len(got) != len(batch) {
			t.Fatalf("seed %d: %d records decoded, want %d", i, len(got), len(batch))
		}
		for j := range batch {
			want := CanonicalRecord(batch[j])
			if !reflect.DeepEqual(got[j], want) {
				t.Errorf("seed %d record %d:\ngot:  %+v\nwant: %+v", i, j, got[j], want)
			}
		}
	}
}

// TestWriteRecordsCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzRecords. Run with WRITE_CORPUS=1 after changing
// recordSeeds or the record wire format.
func TestWriteRecordsCorpus(t *testing.T) {
	if os.Getenv("WRITE_CORPUS") == "" {
		t.Skip("set WRITE_CORPUS=1 to regenerate the corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzRecords")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	names := []string{"empty_batch", "lane_read", "mixed_batch", "sync_and_flush", "zero_deltas"}
	write := func(name string, data []byte) {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i, batch := range recordSeeds() {
		write(names[i], EncodeRecords(nil, batch))
	}
	write("count_bomb", append(appendUvarint(nil, 1<<40), 0, 0, 0, 0))
	write("truncated_batch", EncodeRecords(nil, recordSeeds()[2])[:20])
}
