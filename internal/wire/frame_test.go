package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestPreludeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrelude(&buf); err != nil {
		t.Fatal(err)
	}
	v, err := ReadPrelude(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v != Version {
		t.Fatalf("version = %d, want %d", v, Version)
	}
}

func TestPreludeErrors(t *testing.T) {
	if _, err := ReadPrelude(strings.NewReader("BC")); !errors.Is(err, ErrTruncated) {
		t.Errorf("short prelude: err = %v, want ErrTruncated", err)
	}
	if _, err := ReadPrelude(strings.NewReader("HTTP/")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("foreign bytes: err = %v, want ErrBadMagic", err)
	}
	if _, err := ReadPrelude(strings.NewReader(Magic + "\x63")); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("future version: err = %v, want ErrVersionMismatch", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 1<<16)}
	for i, p := range payloads {
		if err := w.WriteFrame(byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, p := range payloads {
		f, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != byte(i+1) || !bytes.Equal(f.Payload, p) {
			t.Fatalf("frame %d: type %#x len %d, want type %#x len %d", i, f.Type, len(f.Payload), i+1, len(p))
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("at clean boundary: err = %v, want io.EOF", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(FLaunch, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every proper prefix must fail with ErrTruncated (or io.EOF at the
	// zero-byte boundary), never panic.
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		_, err := r.ReadFrame()
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut=0: err = %v, want io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestFrameBadCRC(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(FRace, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip one payload bit.
	corrupted := append([]byte(nil), full...)
	corrupted[7] ^= 0x01
	if _, err := NewReader(bytes.NewReader(corrupted)).ReadFrame(); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("payload corruption: err = %v, want ErrBadCRC", err)
	}
	// Flip a CRC bit.
	corrupted = append([]byte(nil), full...)
	corrupted[len(corrupted)-1] ^= 0x80
	if _, err := NewReader(bytes.NewReader(corrupted)).ReadFrame(); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("crc corruption: err = %v, want ErrBadCRC", err)
	}
}

func TestFrameOversizePrefix(t *testing.T) {
	// A hostile length prefix must be rejected before allocation.
	var hdr [5]byte
	hdr[0] = FModChunk
	binary.LittleEndian.PutUint32(hdr[1:], uint32(MaxFrame+1))
	if _, err := NewReader(bytes.NewReader(hdr[:])).ReadFrame(); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("oversize prefix: err = %v, want ErrFrameOversize", err)
	}
	binary.LittleEndian.PutUint32(hdr[1:], ^uint32(0))
	if _, err := NewReader(bytes.NewReader(hdr[:])).ReadFrame(); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("max u32 prefix: err = %v, want ErrFrameOversize", err)
	}
	if err := NewWriter(io.Discard).WriteFrame(FModChunk, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("oversize write: err = %v, want ErrFrameOversize", err)
	}
}
