package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame is one decoded wire frame.
type Frame struct {
	Type    byte
	Payload []byte
}

// WritePrelude emits the 5-byte stream opener (magic ‖ version).
func WritePrelude(w io.Writer) error {
	var b [5]byte
	copy(b[:], Magic)
	b[4] = Version
	_, err := w.Write(b[:])
	return err
}

// ReadPrelude consumes and validates the stream opener, returning the
// peer's protocol version. A short read is ErrTruncated, a foreign
// byte stream is ErrBadMagic, and a known-magic/wrong-version peer is
// ErrVersionMismatch (the caller can still answer with a FFatal frame:
// framing is stable across versions by construction).
func ReadPrelude(r io.Reader) (byte, error) {
	var b [5]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("%w: prelude: %v", ErrTruncated, err)
	}
	if string(b[:4]) != Magic {
		return 0, ErrBadMagic
	}
	if b[4] != Version {
		return b[4], fmt.Errorf("%w: peer speaks v%d, this build speaks v%d", ErrVersionMismatch, b[4], Version)
	}
	return b[4], nil
}

// Writer frames and buffers outgoing messages. Not safe for concurrent
// use; callers that multiplex (the server's race/summary pushers)
// serialize around it.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter wraps w in a buffered frame writer.
func NewWriter(w io.Writer) *Writer { return &Writer{bw: bufio.NewWriter(w)} }

// WriteFrame emits one frame and flushes it. Flushing per frame keeps
// push latency (time-to-first-race) at one syscall, which is the point
// of the streaming protocol; batching would trade that away.
func (w *Writer) WriteFrame(t byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: writing %d bytes", ErrFrameOversize, len(payload))
	}
	var hdr [5]byte
	hdr[0] = t
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := w.bw.Write(tail[:]); err != nil {
		return err
	}
	return w.bw.Flush()
}

// Reader decodes frames off a stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r in a buffered frame reader.
func NewReader(r io.Reader) *Reader { return &Reader{br: bufio.NewReader(r)} }

// ReadFrame decodes the next frame. io.EOF is returned verbatim at a
// clean frame boundary; every other failure is a typed error. The
// length prefix is validated against MaxFrame before the payload is
// allocated, so a hostile prefix cannot trigger an unbounded (or even
// large) allocation.
func (r *Reader) ReadFrame() (Frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: frame header: %v", ErrTruncated, err)
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("%w: length prefix %d", ErrFrameOversize, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return Frame{}, fmt.Errorf("%w: frame body: %v", ErrTruncated, err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r.br, tail[:]); err != nil {
		return Frame{}, fmt.Errorf("%w: frame crc: %v", ErrTruncated, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(tail[:]) {
		return Frame{}, fmt.Errorf("%w: frame type %#x len %d", ErrBadCRC, hdr[0], n)
	}
	return Frame{Type: hdr[0], Payload: payload}, nil
}
