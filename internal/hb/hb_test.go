package hb

import (
	"math/rand"
	"testing"

	"barracuda/internal/core"
	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/trace"
)

func testGeo() ptvc.Geometry { return ptvc.Geometry{WarpSize: 4, BlockSize: 8, Blocks: 2} }

const full4 = 0xF

func mkRec(op trace.OpKind, warp int, mask uint32, addr uint64, pc uint32) *logging.Record {
	geo := testGeo()
	r := &logging.Record{
		Op: op, Warp: uint32(warp), Block: uint32(geo.BlockOfWarp(warp)),
		Mask: mask, Size: 4, PC: pc,
	}
	for i := range r.Addrs {
		r.Addrs[i] = addr
	}
	return r
}

func TestIntraWarpConcurrentWrites(t *testing.T) {
	c := New(testGeo())
	c.Handle(mkRec(trace.OpWrite, 0, 0x3, 0x100, 1))
	races := c.Races()
	if len(races) != 1 {
		t.Fatalf("races = %v, want 1 (lanes of one instruction are concurrent)", races)
	}
}

func TestEndiOrdersSubsequentAccess(t *testing.T) {
	c := New(testGeo())
	c.Handle(mkRec(trace.OpWrite, 0, 0x1, 0x100, 1))
	c.Handle(mkRec(trace.OpRead, 0, 0x2, 0x100, 2)) // lane 1, next instr
	if c.HasRaces() {
		t.Fatalf("endi failed to order warp instructions: %v", c.Races())
	}
}

func TestCrossWarpUnordered(t *testing.T) {
	c := New(testGeo())
	c.Handle(mkRec(trace.OpWrite, 0, 0x1, 0x100, 1))
	c.Handle(mkRec(trace.OpWrite, 1, 0x1, 0x100, 2))
	if !c.HasRaces() {
		t.Fatal("cross-warp unsynchronized writes must race")
	}
}

func TestBarrierOrders(t *testing.T) {
	c := New(testGeo())
	c.Handle(mkRec(trace.OpWrite, 0, 0x1, 0x100, 1))
	c.Handle(&logging.Record{Op: trace.OpBarRel, Block: 0, Mask: 0b11})
	c.Handle(mkRec(trace.OpRead, 1, 0x1, 0x100, 2))
	if c.HasRaces() {
		t.Fatalf("barrier failed to order: %v", c.Races())
	}
	// The other block is not covered.
	c.Handle(mkRec(trace.OpWrite, 2, 0x1, 0x100, 3))
	if !c.HasRaces() {
		t.Fatal("other-block access must still race")
	}
}

func TestReleaseAcquireScopes(t *testing.T) {
	// relBlk->acqBlk same block orders.
	c := New(testGeo())
	c.Handle(mkRec(trace.OpWrite, 0, 0x1, 0x200, 1))
	c.Handle(mkRec(trace.OpRelBlk, 0, 0x1, 0x300, 2))
	c.Handle(mkRec(trace.OpAcqBlk, 1, 0x1, 0x300, 3))
	c.Handle(mkRec(trace.OpRead, 1, 0x1, 0x200, 4))
	if c.HasRaces() {
		t.Fatalf("block sync within block failed: %v", c.Races())
	}
	// relBlk->acqBlk across blocks does NOT order.
	c2 := New(testGeo())
	c2.Handle(mkRec(trace.OpWrite, 0, 0x1, 0x200, 1))
	c2.Handle(mkRec(trace.OpRelBlk, 0, 0x1, 0x300, 2))
	c2.Handle(mkRec(trace.OpAcqBlk, 2, 0x1, 0x300, 3))
	c2.Handle(mkRec(trace.OpRead, 2, 0x1, 0x200, 4))
	if !c2.HasRaces() {
		t.Fatal("cta-scope sync across blocks must not order")
	}
	// relGlb->acqBlk across blocks orders.
	c3 := New(testGeo())
	c3.Handle(mkRec(trace.OpWrite, 0, 0x1, 0x200, 1))
	c3.Handle(mkRec(trace.OpRelGlb, 0, 0x1, 0x300, 2))
	c3.Handle(mkRec(trace.OpAcqBlk, 2, 0x1, 0x300, 3))
	c3.Handle(mkRec(trace.OpRead, 2, 0x1, 0x200, 4))
	if c3.HasRaces() {
		t.Fatalf("global release + block acquire failed: %v", c3.Races())
	}
}

func TestAtomicsExemptButDontSync(t *testing.T) {
	c := New(testGeo())
	c.Handle(mkRec(trace.OpAtom, 0, 0x1, 0x100, 1))
	c.Handle(mkRec(trace.OpAtom, 1, 0x1, 0x100, 2))
	if c.HasRaces() {
		t.Fatal("atomic pair must not race")
	}
	// But they don't synchronize either.
	c.Handle(mkRec(trace.OpWrite, 0, 0x1, 0x200, 3))
	c.Handle(mkRec(trace.OpAtom, 0, 0x1, 0x100, 4))
	c.Handle(mkRec(trace.OpAtom, 1, 0x1, 0x100, 5))
	c.Handle(mkRec(trace.OpRead, 1, 0x1, 0x200, 6))
	if !c.HasRaces() {
		t.Fatal("atomics must not induce synchronization")
	}
}

func TestBranchPathsConcurrent(t *testing.T) {
	c := New(testGeo())
	c.Handle(&logging.Record{Op: trace.OpIf, Warp: 0, Mask: 0x3})
	c.Handle(mkRec(trace.OpWrite, 0, 0x3, 0x100, 1))
	c.Handle(&logging.Record{Op: trace.OpElse, Warp: 0, Mask: 0xC})
	c.Handle(mkRec(trace.OpWrite, 0, 0xC, 0x100, 2))
	c.Handle(&logging.Record{Op: trace.OpFi, Warp: 0, Mask: full4})
	races := c.Races()
	crossPath := false
	for _, r := range races {
		if r.PrevPC == 1 && r.CurPC == 2 {
			crossPath = true
		}
	}
	if !crossPath {
		t.Fatalf("branch-ordering race missed: %v", races)
	}
	// After fi everything is ordered.
	c.Handle(mkRec(trace.OpRead, 0, 0x1, 0x100, 3))
	for _, r := range c.Races() {
		if r.CurPC == 3 {
			t.Errorf("post-fi access races: %+v", r)
		}
	}
}

func TestDisjointAddressesNoConflict(t *testing.T) {
	c := New(testGeo())
	c.Handle(mkRec(trace.OpWrite, 0, 0x1, 0x100, 1))
	c.Handle(mkRec(trace.OpWrite, 1, 0x1, 0x104, 2)) // adjacent, size 4
	if c.HasRaces() {
		t.Fatalf("disjoint 4-byte accesses raced: %v", c.Races())
	}
	// Overlapping by one byte conflicts.
	c.Handle(mkRec(trace.OpWrite, 2, 0x1, 0x101, 3))
	if !c.HasRaces() {
		t.Fatal("overlapping accesses must conflict")
	}
}

func TestSharedSpaceBlockPrivate(t *testing.T) {
	c := New(testGeo())
	w := mkRec(trace.OpWrite, 0, 0x1, 0x10, 1)
	w.Space = logging.SpaceShared
	c.Handle(w)
	w2 := mkRec(trace.OpWrite, 2, 0x1, 0x10, 2)
	w2.Space = logging.SpaceShared
	c.Handle(w2)
	if c.HasRaces() {
		t.Fatal("shared memory leaked across blocks")
	}
}

// --- Theorem 1 (empirical): detector verdict == definition verdict ----

// genStream mirrors the well-formed random stream generator used in the
// core tests.
func genStream(r *rand.Rand, n int) []*logging.Record {
	var out []*logging.Record
	depth := make([]int, 4)
	elseDone := make([]bool, 4)
	masks := make([][]uint32, 4)
	pending := make([]uint32, 4)
	for w := range masks {
		masks[w] = []uint32{full4}
	}
	for len(out) < n {
		w := r.Intn(4)
		cur := masks[w][len(masks[w])-1]
		switch op := r.Intn(12); {
		case op < 5:
			kinds := []trace.OpKind{trace.OpRead, trace.OpWrite, trace.OpAtom}
			kind := kinds[r.Intn(3)]
			if r.Intn(4) == 0 {
				// A location shared across warps; reads more often
				// than writes, so race-free schedules actually occur.
				if r.Intn(3) != 0 {
					kind = trace.OpRead
				}
				out = append(out, mkRec(kind, w, cur, 0x100, uint32(r.Intn(30))))
			} else {
				// Lane-private strided addresses within a warp-private
				// region: never conflicting.
				rec := mkRec(kind, w, cur, 0, uint32(r.Intn(30)))
				for lane := range rec.Addrs {
					rec.Addrs[lane] = uint64(0x1000+w*0x100) + uint64(lane)*4
				}
				out = append(out, rec)
			}
		case op < 7 && depth[w] == 0 && onesCount(cur) >= 2:
			var first uint32
			for first == 0 || first == cur {
				first = cur & uint32(r.Intn(16))
			}
			out = append(out, &logging.Record{Op: trace.OpIf, Warp: uint32(w), Mask: first})
			pending[w] = cur &^ first
			masks[w] = append(masks[w], first)
			depth[w] = 1
			elseDone[w] = false
		case op < 8 && depth[w] == 1 && !elseDone[w]:
			out = append(out, &logging.Record{Op: trace.OpElse, Warp: uint32(w), Mask: pending[w]})
			masks[w][len(masks[w])-1] = pending[w]
			elseDone[w] = true
		case op < 9 && depth[w] == 1 && elseDone[w]:
			masks[w] = masks[w][:len(masks[w])-1]
			out = append(out, &logging.Record{Op: trace.OpFi, Warp: uint32(w), Mask: masks[w][len(masks[w])-1]})
			depth[w] = 0
		case op < 10:
			kinds := []trace.OpKind{
				trace.OpAcqBlk, trace.OpRelBlk, trace.OpArBlk,
				trace.OpAcqGlb, trace.OpRelGlb, trace.OpArGlb,
			}
			out = append(out, mkRec(kinds[r.Intn(len(kinds))], w, cur, 0x300, uint32(40+r.Intn(5))))
		default:
			blk := r.Intn(2)
			w0, w1 := blk*2, blk*2+1
			if depth[w0] != 0 || depth[w1] != 0 {
				continue
			}
			geo := testGeo()
			out = append(out,
				&logging.Record{Op: trace.OpBar, Warp: uint32(w0), Block: uint32(blk), Mask: full4, PC: 50},
				&logging.Record{Op: trace.OpBar, Warp: uint32(w1), Block: uint32(blk), Mask: full4, PC: 50},
				&logging.Record{Op: trace.OpBarRel, Block: uint32(blk), Mask: 0b11})
			_ = geo
		}
	}
	return out
}

func onesCount(m uint32) int {
	n := 0
	for ; m != 0; m >>= 1 {
		n += int(m & 1)
	}
	return n
}

func TestTheorem1Agreement(t *testing.T) {
	agreeRacy, agreeClean := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		stream := genStream(r, 60)
		det := core.New(testGeo(), 256, core.Options{NoSameValueFilter: true})
		ref := New(testGeo())
		for _, rc := range stream {
			cp1, cp2 := *rc, *rc
			det.Handle(&cp1)
			ref.Handle(&cp2)
		}
		dv := det.Report().HasRaces()
		rv := ref.HasRaces()
		if dv != rv {
			t.Fatalf("seed %d: detector=%v reference=%v\nref races: %v\ndet races: %v",
				seed, dv, rv, ref.Races(), det.Report().Races)
		}
		if dv {
			agreeRacy++
		} else {
			agreeClean++
		}
	}
	// The generator must exercise both verdicts for the test to mean
	// anything.
	if agreeRacy == 0 || agreeClean == 0 {
		t.Fatalf("degenerate coverage: racy=%d clean=%d", agreeRacy, agreeClean)
	}
}
