// Package hb is a reference happens-before checker that materialises the
// synchronization-order partial order of §3.2 directly: it expands the
// record stream into thread-level trace operations, builds the
// synchronization-order DAG (program order, endi/bar/if/else/fi
// barrier-style edges, scoped release→acquire edges), computes its
// transitive closure, and reports races straight from the definition —
// two accesses to the same location, at least one write, not both
// atomics, unordered both ways.
//
// It is deliberately simple and quadratic: its only job is to provide an
// independent ground truth for the BARRACUDA detector (the empirical
// Theorem 1 check), so it shares no code with the vector-clock machinery.
package hb

import (
	"fmt"

	"barracuda/internal/logging"
	"barracuda/internal/ptvc"
	"barracuda/internal/trace"
	"barracuda/internal/vc"
)

// op is one trace operation.
type op struct {
	kind   trace.OpKind
	tids   []vc.TID // involved threads (singleton for thread-level ops)
	tidSet map[vc.TID]bool
	space  logging.SpaceID
	block  int32 // shared-memory block, -1 otherwise
	addr   uint64
	size   int
	pc     uint32
	warp   int
}

func (o *op) isBarrierStyle() bool {
	switch o.kind {
	case trace.OpBar, trace.OpIf, trace.OpElse, trace.OpFi:
		return true
	}
	return o.kind == endiKind
}

// endiKind is a private marker for synthesized endi operations.
const endiKind trace.OpKind = 200

// Race is one unordered conflicting pair.
type Race struct {
	PrevPC, CurPC uint64
	Addr          uint64
	PrevWrite     bool
	CurWrite      bool
}

// Checker accumulates a trace and checks it on demand.
type Checker struct {
	geo   ptvc.Geometry
	ops   []*op
	masks map[int][]uint32 // per-warp SIMT mask stack (amask on top)
}

// New creates a checker for the given launch geometry.
func New(geo ptvc.Geometry) *Checker {
	return &Checker{geo: geo, masks: make(map[int][]uint32)}
}

// amask returns the current active mask of a warp (the K_w.peek() of the
// formal rules).
func (c *Checker) amask(gwid int) uint32 {
	if s := c.masks[gwid]; len(s) > 0 {
		return s[len(s)-1]
	}
	return c.fullMask(gwid)
}

// Handle appends the trace operations of one record.
func (c *Checker) Handle(r *logging.Record) {
	switch r.Op {
	case trace.OpRead, trace.OpWrite, trace.OpAtom,
		trace.OpAcqBlk, trace.OpRelBlk, trace.OpArBlk,
		trace.OpAcqGlb, trace.OpRelGlb, trace.OpArGlb:
		blk := int32(-1)
		if r.Space == logging.SpaceShared {
			blk = int32(r.Block)
		}
		for lane := 0; lane < c.geo.WarpSize && lane < logging.WarpWidth; lane++ {
			if r.Mask&(1<<uint(lane)) == 0 {
				continue
			}
			tid := c.geo.TIDOf(int(r.Warp), lane)
			c.ops = append(c.ops, &op{
				kind:  r.Op,
				tids:  []vc.TID{tid},
				space: r.Space,
				block: blk,
				addr:  r.LaneAddr(lane),
				size:  int(r.Size),
				pc:    r.PC,
				warp:  int(r.Warp),
			})
		}
		// Each warp memory instruction is followed by endi(w) over the
		// warp's currently-active threads (feasible-trace condition 2
		// of §3.1; ENDINSN uses K_w.peek(), not the record mask, which
		// may be narrower for a predicated instruction).
		c.ops = append(c.ops, &op{
			kind: endiKind,
			tids: c.laneTIDs(int(r.Warp), c.amask(int(r.Warp))),
			warp: int(r.Warp),
		})
	case trace.OpIf:
		c.masks[int(r.Warp)] = append(c.masks[int(r.Warp)], 0) // placeholder
		s := c.masks[int(r.Warp)]
		s[len(s)-1] = r.Mask
		c.ops = append(c.ops, &op{
			kind: r.Op,
			tids: c.laneTIDs(int(r.Warp), r.Mask),
			warp: int(r.Warp),
		})
	case trace.OpElse:
		if s := c.masks[int(r.Warp)]; len(s) > 0 {
			s[len(s)-1] = r.Mask
		}
		c.ops = append(c.ops, &op{
			kind: r.Op,
			tids: c.laneTIDs(int(r.Warp), r.Mask),
			warp: int(r.Warp),
		})
	case trace.OpFi:
		if s := c.masks[int(r.Warp)]; len(s) > 0 {
			c.masks[int(r.Warp)] = s[:len(s)-1]
		}
		c.ops = append(c.ops, &op{
			kind: r.Op,
			tids: c.laneTIDs(int(r.Warp), r.Mask),
			warp: int(r.Warp),
		})
	case trace.OpBarRel:
		// The released barrier covers every thread of the arrived warps.
		var tids []vc.TID
		wpb := c.geo.WarpsPerBlock()
		for wi := 0; wi < wpb && wi < 32; wi++ {
			if r.Mask&(1<<uint(wi)) == 0 {
				continue
			}
			gw := int(r.Block)*wpb + wi
			full := c.fullMask(gw)
			tids = append(tids, c.laneTIDs(gw, full)...)
		}
		c.ops = append(c.ops, &op{kind: trace.OpBar, tids: tids})
	case trace.OpBar, trace.OpEnd, trace.OpNone:
		// Per-warp barrier markers carry no synchronization of their
		// own (the BarRel event does); stream control ops are ignored.
	}
}

func (c *Checker) laneTIDs(warp int, mask uint32) []vc.TID {
	var out []vc.TID
	for lane := 0; lane < c.geo.WarpSize && lane < logging.WarpWidth; lane++ {
		if mask&(1<<uint(lane)) != 0 {
			out = append(out, c.geo.TIDOf(warp, lane))
		}
	}
	return out
}

func (c *Checker) fullMask(gwid int) uint32 {
	lanes := c.geo.BlockSize - (gwid%c.geo.WarpsPerBlock())*c.geo.WarpSize
	if lanes > c.geo.WarpSize {
		lanes = c.geo.WarpSize
	}
	if lanes >= 32 {
		return ^uint32(0)
	}
	return 1<<uint(lanes) - 1
}

// bitset is a dense reachability row.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }
func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// syncKey identifies a synchronization location.
type syncKey struct {
	space logging.SpaceID
	block int32
	addr  uint64
}

// syncSlot mirrors the S_x strong-update semantics of the formal rules
// (Figure 3): a release *replaces* the slot for its scope, so an acquire
// synchronizes with the release currently occupying the visible slot(s),
// not with every earlier release.
type syncSlot struct {
	perBlock map[int]int // thread block -> release op index
	global   int         // -1 when empty
}

// acquireEdges computes, for each acquire op, the indices of the release
// ops it synchronizes with.
func (c *Checker) acquireEdges() map[int][]int {
	slots := make(map[syncKey]*syncSlot)
	edges := make(map[int][]int)
	for j, o := range c.ops {
		if !o.kind.IsSync() {
			continue
		}
		k := syncKey{o.space, o.block, o.addr}
		s := slots[k]
		if s == nil {
			s = &syncSlot{perBlock: make(map[int]int), global: -1}
			slots[k] = s
		}
		tb := c.geo.BlockOf(o.tids[0])
		if o.kind.IsAcquire() {
			if o.kind.GlobalScope() {
				for _, i := range s.perBlock {
					edges[j] = append(edges[j], i)
				}
				if s.global >= 0 && len(s.perBlock) < c.geo.Blocks {
					edges[j] = append(edges[j], s.global)
				}
			} else {
				if i, ok := s.perBlock[tb]; ok {
					edges[j] = append(edges[j], i)
				} else if s.global >= 0 {
					edges[j] = append(edges[j], s.global)
				}
			}
		}
		if o.kind.IsRelease() {
			if o.kind.GlobalScope() {
				s.perBlock = make(map[int]int)
				s.global = j
			} else {
				s.perBlock[tb] = j
			}
		}
	}
	return edges
}

// Races computes the synchronization order and returns every unordered
// conflicting pair of memory accesses.
func (c *Checker) Races() []Race {
	n := len(c.ops)
	for _, o := range c.ops {
		o.tidSet = make(map[vc.TID]bool, len(o.tids))
		for _, t := range o.tids {
			o.tidSet[t] = true
		}
	}
	acq := c.acquireEdges()
	// reach[j] = set of i < j with ops[i] <σ ops[j]. All edges point
	// forward in the (single linearized) trace, so one forward pass of
	// union-propagation computes the closure.
	reach := make([]bitset, n)
	for j := 0; j < n; j++ {
		reach[j] = newBitset(n)
		oj := c.ops[j]
		for _, i := range acq[j] {
			if !reach[j].get(i) {
				reach[j].set(i)
				reach[j].or(reach[i])
			}
		}
		for i := 0; i < j; i++ {
			if reach[j].get(i) {
				continue // already reachable transitively
			}
			if c.edge(c.ops[i], oj) {
				reach[j].set(i)
				reach[j].or(reach[i])
			}
		}
	}
	var races []Race
	for j := 0; j < n; j++ {
		oj := c.ops[j]
		if !isAccess(oj.kind) {
			continue
		}
		for i := 0; i < j; i++ {
			oi := c.ops[i]
			if !isAccess(oi.kind) || reach[j].get(i) {
				continue
			}
			if !conflict(oi, oj) {
				continue
			}
			races = append(races, Race{
				PrevPC: uint64(oi.pc), CurPC: uint64(oj.pc),
				Addr:      oj.addr,
				PrevWrite: oi.kind.Writes(), CurWrite: oj.kind.Writes(),
			})
		}
	}
	return races
}

// HasRaces reports whether the trace contains any race.
func (c *Checker) HasRaces() bool { return len(c.Races()) > 0 }

// isAccess reports whether the op participates in race checking. Sync
// accesses update S_x but are not race-checked, matching the formal
// detector rules (Figures 2–3).
func isAccess(k trace.OpKind) bool {
	return k == trace.OpRead || k == trace.OpWrite || k == trace.OpAtom
}

// conflict implements the §3.2 race condition for a pair of accesses.
func conflict(a, b *op) bool {
	if a.space != b.space || a.block != b.block {
		return false
	}
	// Byte ranges must overlap.
	if a.addr+uint64(max(a.size, 1)) <= b.addr || b.addr+uint64(max(b.size, 1)) <= a.addr {
		return false
	}
	// At least one write; atomics do not race with each other.
	if !a.kind.Writes() && !b.kind.Writes() {
		return false
	}
	if a.kind == trace.OpAtom && b.kind == trace.OpAtom {
		return false
	}
	// Same thread is ordered by program order; the closure catches it,
	// but a self-pair is never a race by definition.
	return !(len(a.tids) == 1 && len(b.tids) == 1 && a.tids[0] == b.tids[0])
}

// edge implements the direct program-order and barrier-style
// synchronization edges of §3.2 for a before b in the trace (the scoped
// release→acquire edges are computed separately by acquireEdges).
func (c *Checker) edge(a, b *op) bool {
	if !intersects(a, b) {
		return false
	}
	// Barrier-style ops (endi, bar, if, else, fi) synchronize with all
	// operations of their involved threads; thread-level pairs need the
	// same thread (intra-thread program order).
	if a.isBarrierStyle() || b.isBarrierStyle() {
		return true
	}
	return a.tids[0] == b.tids[0]
}

func intersects(a, b *op) bool {
	if len(a.tids) > len(b.tids) {
		a, b = b, a
	}
	for _, t := range a.tids {
		if b.tidSet[t] {
			return true
		}
	}
	return false
}

// String renders an op for diagnostics.
func (o *op) String() string {
	return fmt.Sprintf("%v tids=%v addr=%#x pc=%d", o.kind, o.tids, o.addr, o.pc)
}
