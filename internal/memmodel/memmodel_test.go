package memmodel

import (
	"math/rand"
	"testing"
)

const testRuns = 20000

func TestMPCtaCtaViolatesOnKepler(t *testing.T) {
	n := MP(Cta, Cta).Estimate(Kepler, testRuns, 1)
	if n == 0 {
		t.Fatal("mp(cta,cta) on Kepler never violated; weak behaviour not modeled")
	}
	t.Logf("mp(cta,cta) Kepler: %d/%d non-SC", n, testRuns)
}

func TestMPCtaCtaSCOnMaxwell(t *testing.T) {
	if n := MP(Cta, Cta).Estimate(Maxwell, testRuns, 2); n != 0 {
		t.Fatalf("mp(cta,cta) on Maxwell violated %d times; want 0", n)
	}
}

func TestMPGlobalFenceEitherSideIsSC(t *testing.T) {
	combos := [][2]FenceKind{{Cta, Gl}, {Gl, Cta}, {Gl, Gl}}
	for _, c := range combos {
		for _, arch := range []Arch{Kepler, Maxwell} {
			if n := MP(c[0], c[1]).Estimate(arch, testRuns, 3); n != 0 {
				t.Errorf("mp(%v,%v) on %s violated %d times; want 0", c[0], c[1], arch.Name, n)
			}
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	rows := Figure4(testRuns, 7)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Row 0 is cta/cta: Kepler weak, Maxwell SC.
	if rows[0].Kepler == 0 {
		t.Error("cta/cta Kepler column is zero")
	}
	if rows[0].Maxwell != 0 {
		t.Error("cta/cta Maxwell column nonzero")
	}
	for _, r := range rows[1:] {
		if r.Kepler != 0 || r.Maxwell != 0 {
			t.Errorf("row %v/%v nonzero: %+v", r.Fence1, r.Fence2, r)
		}
	}
}

func TestSBWeakWithoutGlobalFences(t *testing.T) {
	if n := SB(Cta, Cta).Estimate(Kepler, testRuns, 4); n == 0 {
		t.Error("sb(cta,cta) on Kepler never violated")
	}
	if n := SB(Gl, Gl).Estimate(Kepler, testRuns, 5); n != 0 {
		t.Errorf("sb(gl,gl) violated %d times; want 0", n)
	}
}

func TestOwnStoresVisibleImmediately(t *testing.T) {
	// A single thread must always read its own latest store.
	test := &Test{
		Name: "own-store",
		Vars: 1, Regs: 1,
		Threads:   [][]LOp{{St(0, 5), Ld(0, 0)}},
		Forbidden: func(regs []uint32) bool { return regs[0] != 5 },
	}
	if n := test.Estimate(Kepler, 2000, 6); n != 0 {
		t.Errorf("own store invisible %d times", n)
	}
}

func TestEventualVisibility(t *testing.T) {
	// Without any fence, a store must still become visible by the end
	// of the run often (propagation is not starvation-prone within a
	// run, just unordered) — check it is at least sometimes visible.
	test := &Test{
		Name: "eventual",
		Vars: 1, Regs: 1,
		Threads: [][]LOp{
			{St(0, 1)},
			{Ld(0, 0)},
		},
		Forbidden: func(regs []uint32) bool { return regs[0] == 1 },
	}
	seen := test.Estimate(Kepler, 2000, 8)
	if seen == 0 {
		t.Error("store never propagated to the reader")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := MP(Cta, Cta).Estimate(Kepler, 5000, 42)
	b := MP(Cta, Cta).Estimate(Kepler, 5000, 42)
	if a != b {
		t.Errorf("same seed, different counts: %d vs %d", a, b)
	}
}

func TestRunSingle(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	// Smoke: Run must terminate and produce a boolean without panic.
	for i := 0; i < 100; i++ {
		MP(Cta, Cta).Run(Kepler, r)
	}
}

func TestFenceKindString(t *testing.T) {
	if Cta.String() != "membar.cta" || Gl.String() != "membar.gl" {
		t.Error("FenceKind strings wrong")
	}
}
