// Package memmodel is a relaxed-memory litmus-test engine for the fence
// semantics BARRACUDA's scoped synchronization rules are built on
// (§3.3.3, Figure 4).
//
// The paper runs the message-passing (mp) litmus test on two GPUs and
// finds that membar.cta in both threads admits the non-SC outcome
// r1=1 ∧ r2=0 on a Kepler GPU while a membar.gl in either thread always
// yields SC behaviour. We model the observable weakness as out-of-order
// cross-block store propagation: every thread block has its own view of
// global memory; a store becomes visible to other blocks through pending
// updates that apply in nondeterministic order. A global fence executed
// by the writer applies the writer's pending updates everywhere (in
// order); a global fence executed by a reader pulls all pending updates
// into its view; a block-scoped fence does neither on a weak
// architecture. On a strong (Maxwell-like) profile block fences behave
// globally, reproducing the zero column of the paper's table.
//
// The engine supports arbitrary small litmus programs; the mp test of
// Figure 4 ships as a constructor.
package memmodel

import (
	"fmt"
	"math/rand"
)

// Arch is an architecture profile for the weak-memory simulation.
type Arch struct {
	Name string
	// CtaFenceGlobal makes membar.cta behave like membar.gl, as
	// observed (never violated) on the GTX Titan X.
	CtaFenceGlobal bool
}

// The two profiles of the paper's experimental setup.
var (
	Kepler  = Arch{Name: "GRID K520 (Kepler)"}
	Maxwell = Arch{Name: "GTX Titan X (Maxwell)", CtaFenceGlobal: true}
)

// OpCode is a litmus-thread operation.
type OpCode int

// Litmus operations.
const (
	OpStore OpCode = iota
	OpLoad
	OpFenceCta
	OpFenceGl
)

// LOp is one operation of a litmus thread.
type LOp struct {
	Code OpCode
	Addr int // variable index
	Val  uint32
	Reg  int // destination register for loads
}

// St builds a store operation.
func St(addr int, val uint32) LOp { return LOp{Code: OpStore, Addr: addr, Val: val} }

// Ld builds a load operation.
func Ld(reg, addr int) LOp { return LOp{Code: OpLoad, Addr: addr, Reg: reg} }

// FenceCta builds a block-scoped fence.
func FenceCta() LOp { return LOp{Code: OpFenceCta} }

// FenceGl builds a global fence.
func FenceGl() LOp { return LOp{Code: OpFenceGl} }

// Test is a litmus test: each thread runs in its own thread block
// (matching the paper's setup), and Forbidden decides whether a final
// register assignment is the non-SC outcome being counted.
type Test struct {
	Name      string
	Vars      int
	Regs      int
	Threads   [][]LOp
	Forbidden func(regs []uint32) bool
}

// update is a store not yet visible to every block.
type update struct {
	from int
	addr int
	val  uint32
	// seen[b] records whether block b's view already has this update.
	seen []bool
}

// engine is one randomized execution.
type engine struct {
	test    *Test
	arch    Arch
	r       *rand.Rand
	views   [][]uint32 // per block: its view of each variable
	pcs     []int
	regs    []uint32
	pending []*update
}

// Run executes the test once under a random schedule and reports whether
// the forbidden outcome occurred.
func (t *Test) Run(arch Arch, r *rand.Rand) bool {
	n := len(t.Threads)
	e := &engine{test: t, arch: arch, r: r,
		views: make([][]uint32, n),
		pcs:   make([]int, n),
		regs:  make([]uint32, t.Regs),
	}
	for b := range e.views {
		e.views[b] = make([]uint32, t.Vars)
	}
	for !e.done() {
		// Memory-stress style randomization: interleave thread steps
		// with nondeterministic propagation of pending stores.
		if len(e.pending) > 0 && e.r.Intn(2) == 0 {
			e.propagateOne()
			continue
		}
		th := e.r.Intn(n)
		if e.pcs[th] >= len(t.Threads[th]) {
			continue
		}
		e.step(th)
	}
	return t.Forbidden(e.regs)
}

func (e *engine) done() bool {
	for th, pc := range e.pcs {
		if pc < len(e.test.Threads[th]) {
			return false
		}
	}
	return true
}

// propagateOne applies one random pending update to one random block
// that has not seen it — stores from one block may thus become visible
// to another block out of order.
func (e *engine) propagateOne() {
	u := e.pending[e.r.Intn(len(e.pending))]
	var targets []int
	for b, seen := range u.seen {
		if !seen {
			targets = append(targets, b)
		}
	}
	if len(targets) == 0 {
		e.compact()
		return
	}
	b := targets[e.r.Intn(len(targets))]
	e.views[b][u.addr] = u.val
	u.seen[b] = true
	e.compact()
}

// compact drops fully-propagated updates.
func (e *engine) compact() {
	out := e.pending[:0]
	for _, u := range e.pending {
		all := true
		for _, s := range u.seen {
			all = all && s
		}
		if !all {
			out = append(out, u)
		}
	}
	e.pending = out
}

// flushFrom applies, in program order, every pending update originating
// from block th (writer-side global fence).
func (e *engine) flushFrom(th int) {
	for _, u := range e.pending {
		if u.from != th {
			continue
		}
		for b, seen := range u.seen {
			if !seen {
				e.views[b][u.addr] = u.val
				u.seen[b] = true
			}
		}
	}
	e.compact()
}

// pullInto applies every pending update (from any writer, in program
// order per writer) into block th's view (reader-side global fence).
func (e *engine) pullInto(th int) {
	for _, u := range e.pending {
		if !u.seen[th] {
			e.views[th][u.addr] = u.val
			u.seen[th] = true
		}
	}
	e.compact()
}

func (e *engine) step(th int) {
	op := e.test.Threads[th][e.pcs[th]]
	e.pcs[th]++
	switch op.Code {
	case OpStore:
		// Own view updates immediately; other blocks see it later.
		e.views[th][op.Addr] = op.Val
		u := &update{from: th, addr: op.Addr, val: op.Val, seen: make([]bool, len(e.views))}
		u.seen[th] = true
		e.pending = append(e.pending, u)
	case OpLoad:
		e.regs[op.Reg] = e.views[th][op.Addr]
	case OpFenceGl:
		e.flushFrom(th)
		e.pullInto(th)
	case OpFenceCta:
		if e.arch.CtaFenceGlobal {
			e.flushFrom(th)
			e.pullInto(th)
		}
		// Otherwise: orders only within the block; with one thread per
		// block there is nothing to do.
	}
}

// Estimate runs the test n times and returns the number of forbidden
// (non-SC) observations.
func (t *Test) Estimate(arch Arch, n int, seed int64) int {
	r := rand.New(rand.NewSource(seed))
	count := 0
	for i := 0; i < n; i++ {
		if t.Run(arch, r) {
			count++
		}
	}
	return count
}

// FenceKind selects the fence placed in a litmus thread.
type FenceKind int

// Fence choices for the mp test rows of Figure 4.
const (
	Cta FenceKind = iota
	Gl
)

func (f FenceKind) String() string {
	if f == Gl {
		return "membar.gl"
	}
	return "membar.cta"
}

func (f FenceKind) op() LOp {
	if f == Gl {
		return FenceGl()
	}
	return FenceCta()
}

// MP builds the message-passing litmus test of Figure 4:
//
//	init: x = y = 0                      final: r1=1 ∧ r2=0
//	T0: st x,1; fence1; st y,1
//	T1: r1 = ld y; fence2; r2 = ld x
//
// with x and y in global memory and each thread in a distinct block.
func MP(fence1, fence2 FenceKind) *Test {
	const x, y = 0, 1
	return &Test{
		Name: fmt.Sprintf("mp(%v,%v)", fence1, fence2),
		Vars: 2,
		Regs: 2,
		Threads: [][]LOp{
			{St(x, 1), fence1.op(), St(y, 1)},
			{Ld(0, y), fence2.op(), Ld(1, x)},
		},
		Forbidden: func(regs []uint32) bool { return regs[0] == 1 && regs[1] == 0 },
	}
}

// SB builds the store-buffering litmus test (both registers zero is the
// non-SC outcome):
//
//	T0: st x,1; fence; r0 = ld y
//	T1: st y,1; fence; r1 = ld x
func SB(fence1, fence2 FenceKind) *Test {
	const x, y = 0, 1
	return &Test{
		Name: fmt.Sprintf("sb(%v,%v)", fence1, fence2),
		Vars: 2,
		Regs: 2,
		Threads: [][]LOp{
			{St(x, 1), fence1.op(), Ld(0, y)},
			{St(y, 1), fence2.op(), Ld(1, x)},
		},
		Forbidden: func(regs []uint32) bool { return regs[0] == 0 && regs[1] == 0 },
	}
}

// Fig4Row is one row of the paper's Figure 4 table.
type Fig4Row struct {
	Fence1, Fence2 FenceKind
	Kepler         int
	Maxwell        int
	Runs           int
}

// Figure4 reproduces the fence litmus table: the mp test under all four
// fence combinations on both architecture profiles.
func Figure4(runs int, seed int64) []Fig4Row {
	combos := [][2]FenceKind{{Cta, Cta}, {Cta, Gl}, {Gl, Cta}, {Gl, Gl}}
	rows := make([]Fig4Row, 0, len(combos))
	for _, c := range combos {
		t := MP(c[0], c[1])
		rows = append(rows, Fig4Row{
			Fence1:  c[0],
			Fence2:  c[1],
			Kepler:  t.Estimate(Kepler, runs, seed),
			Maxwell: t.Estimate(Maxwell, runs, seed+1),
			Runs:    runs,
		})
	}
	return rows
}
