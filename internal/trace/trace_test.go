package trace

import (
	"testing"

	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
)

func classify(t *testing.T, body string) (map[int]OpKind, *kernel.CFG) {
	t.Helper()
	src := `.visible .entry k(.param .u64 p) {
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	.reg .pred %p<4>;
` + body + `
	ret;
}`
	k, err := ptx.ParseKernel(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := kernel.Build(k)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return Classify(c), c
}

// kindAt returns the classification of the instruction with the given
// opcode occurrence (0-based) in the stream.
func kindAt(c *kernel.CFG, m map[int]OpKind, op ptx.Op, occurrence int) OpKind {
	n := 0
	for i, in := range c.Instrs {
		if in.Op == op {
			if n == occurrence {
				return m[i]
			}
			n++
		}
	}
	return OpNone
}

func TestPlainLoadStore(t *testing.T) {
	m, c := classify(t, `
	ld.param.u64 %rd1, [p];
	ld.global.u32 %r1, [%rd1];
	st.global.u32 [%rd1], %r1;
	st.shared.u32 [%rd1], %r1;`)
	if k := kindAt(c, m, ptx.OpLd, 1); k != OpRead {
		t.Errorf("global load = %v, want rd", k)
	}
	if k := kindAt(c, m, ptx.OpSt, 0); k != OpWrite {
		t.Errorf("global store = %v, want wr", k)
	}
	if k := kindAt(c, m, ptx.OpSt, 1); k != OpWrite {
		t.Errorf("shared store = %v, want wr", k)
	}
	// ld.param is not a tracked memory access.
	if k := kindAt(c, m, ptx.OpLd, 0); k != OpNone {
		t.Errorf("param load = %v, want none", k)
	}
}

func TestReleaseStore(t *testing.T) {
	m, c := classify(t, `
	ld.param.u64 %rd1, [p];
	membar.cta;
	st.global.u32 [%rd1], 1;
	membar.gl;
	st.global.u32 [%rd1+4], 1;`)
	if k := kindAt(c, m, ptx.OpSt, 0); k != OpRelBlk {
		t.Errorf("cta-fenced store = %v, want relBlk", k)
	}
	if k := kindAt(c, m, ptx.OpSt, 1); k != OpRelGlb {
		t.Errorf("gl-fenced store = %v, want relGlb", k)
	}
}

func TestAcquireLoad(t *testing.T) {
	m, c := classify(t, `
	ld.param.u64 %rd1, [p];
	ld.global.u32 %r1, [%rd1];
	membar.gl;
	ld.global.cg.u32 %r2, [%rd1];
	membar.cta;`)
	if k := kindAt(c, m, ptx.OpLd, 1); k != OpAcqGlb {
		t.Errorf("gl-fenced load = %v, want acqGlb", k)
	}
	if k := kindAt(c, m, ptx.OpLd, 2); k != OpAcqBlk {
		t.Errorf("cta-fenced load = %v, want acqBlk", k)
	}
}

func TestSysFenceIsGlobal(t *testing.T) {
	m, c := classify(t, `
	ld.param.u64 %rd1, [p];
	membar.sys;
	st.global.u32 [%rd1], 1;`)
	if k := kindAt(c, m, ptx.OpSt, 0); k != OpRelGlb {
		t.Errorf("sys-fenced store = %v, want relGlb", k)
	}
}

func TestCasLockAcquire(t *testing.T) {
	m, c := classify(t, `
	ld.param.u64 %rd1, [p];
	atom.global.cas.b32 %r1, [%rd1], 0, 1;
	membar.gl;`)
	if k := kindAt(c, m, ptx.OpAtom, 0); k != OpAcqGlb {
		t.Errorf("cas+fence = %v, want acqGlb", k)
	}
}

func TestExchLockRelease(t *testing.T) {
	m, c := classify(t, `
	ld.param.u64 %rd1, [p];
	membar.cta;
	atom.global.exch.b32 %r1, [%rd1], 0;`)
	if k := kindAt(c, m, ptx.OpAtom, 0); k != OpRelBlk {
		t.Errorf("fence+exch = %v, want relBlk", k)
	}
}

func TestSandwichedAtomic(t *testing.T) {
	m, c := classify(t, `
	ld.param.u64 %rd1, [p];
	membar.cta;
	atom.global.add.u32 %r1, [%rd1], 1;
	membar.gl;`)
	if k := kindAt(c, m, ptx.OpAtom, 0); k != OpArGlb {
		t.Errorf("sandwiched atom = %v, want arGlb (either fence global)", k)
	}
}

func TestSandwichedAtomicBlockScope(t *testing.T) {
	m, c := classify(t, `
	ld.param.u64 %rd1, [p];
	membar.cta;
	atom.global.add.u32 %r1, [%rd1], 1;
	membar.cta;`)
	if k := kindAt(c, m, ptx.OpAtom, 0); k != OpArBlk {
		t.Errorf("cta-sandwiched atom = %v, want arBlk", k)
	}
}

func TestStandaloneAtomic(t *testing.T) {
	m, c := classify(t, `
	ld.param.u64 %rd1, [p];
	atom.global.add.u32 %r1, [%rd1], 1;
	atom.shared.exch.b32 %r2, [%rd1], 0;
	red.global.add.u32 [%rd1], 1;`)
	for occ := 0; occ < 2; occ++ {
		if k := kindAt(c, m, ptx.OpAtom, occ); k != OpAtom {
			t.Errorf("atom occurrence %d = %v, want atm", occ, k)
		}
	}
	if k := kindAt(c, m, ptx.OpRed, 0); k != OpAtom {
		t.Errorf("red = %v, want atm", k)
	}
}

func TestCasWithoutFenceIsPlainAtom(t *testing.T) {
	// The hashtable bug (§6.3): atomicCAS without a fence does NOT
	// synchronize.
	m, c := classify(t, `
	ld.param.u64 %rd1, [p];
	atom.global.cas.b32 %r1, [%rd1], 0, 1;`)
	if k := kindAt(c, m, ptx.OpAtom, 0); k != OpAtom {
		t.Errorf("unfenced cas = %v, want atm", k)
	}
}

func TestFenceAcrossBlockBoundaryNotBundled(t *testing.T) {
	// The fence is in a different basic block from the store (a label
	// target intervenes), so no release is inferred.
	m, c := classify(t, `
	ld.param.u64 %rd1, [p];
	membar.cta;
	bra.uni L;
L:
	st.global.u32 [%rd1], 1;`)
	if k := kindAt(c, m, ptx.OpSt, 0); k != OpWrite {
		t.Errorf("store after block boundary = %v, want wr", k)
	}
}

func TestBarrierClassified(t *testing.T) {
	m, c := classify(t, `
	bar.sync 0;`)
	if k := kindAt(c, m, ptx.OpBar, 0); k != OpBar {
		t.Errorf("bar = %v, want bar", k)
	}
}

func TestOpKindPredicates(t *testing.T) {
	if !OpAcqBlk.IsAcquire() || OpAcqBlk.IsRelease() || OpAcqBlk.GlobalScope() {
		t.Error("OpAcqBlk predicates wrong")
	}
	if !OpRelGlb.IsRelease() || OpRelGlb.IsAcquire() || !OpRelGlb.GlobalScope() {
		t.Error("OpRelGlb predicates wrong")
	}
	if !OpArGlb.IsAcquire() || !OpArGlb.IsRelease() || !OpArGlb.GlobalScope() {
		t.Error("OpArGlb predicates wrong")
	}
	if !OpWrite.Writes() || OpRead.Writes() || !OpAtom.Writes() {
		t.Error("Writes() wrong")
	}
	if !OpRelBlk.Writes() || OpAcqBlk.Writes() {
		t.Error("sync Writes() wrong: releases write, acquires read")
	}
	if !OpRead.IsMemory() || OpBar.IsMemory() || OpIf.IsMemory() {
		t.Error("IsMemory() wrong")
	}
}

func TestLogKindRoundTrip(t *testing.T) {
	kinds := []OpKind{
		OpRead, OpWrite, OpAtom, OpAcqBlk, OpRelBlk, OpArBlk,
		OpAcqGlb, OpRelGlb, OpArGlb, OpBar, OpIf, OpElse, OpFi,
	}
	for _, k := range kinds {
		lk := k.LogKind()
		if lk == ptx.LogNone {
			t.Errorf("%v has no log kind", k)
			continue
		}
		if back := FromLogKind(lk); back != k {
			t.Errorf("round trip %v -> %v -> %v", k, lk, back)
		}
	}
}
