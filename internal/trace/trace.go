// Package trace defines BARRACUDA's abstract trace operations (§3.1) and
// the static inference that translates PTX instructions into them.
//
// A program execution is modeled as a sequence of operations:
//
//	rd(t,x) wr(t,x)                      thread-level memory accesses
//	endi(w)                              end of a warp instruction
//	if(w) else(w) fi(w)                  warp branch operations
//	bar(b)                               block-level barrier
//	atm(t,x)                             standalone atomic RMW
//	acqBlk/relBlk/arBlk(t,x)             block-scoped synchronization
//	acqGlb/relGlb/arGlb(t,x)             global-scoped synchronization
//
// The synchronization operations are inferred from fence adjacency in
// static code: a store immediately preceded by a membar becomes a release,
// a load immediately followed by a membar becomes an acquire, atom.cas
// followed by a fence is an acquire, atom.exch preceded by a fence is a
// release, and an atomic sandwiched between fences is both. The fence kind
// (membar.cta vs membar.gl/sys) selects block or global scope.
package trace

import (
	"barracuda/internal/kernel"
	"barracuda/internal/ptx"
)

// OpKind identifies a trace operation.
type OpKind uint8

// Trace operation kinds. The *Blk/*Glb groups must stay contiguous: scope
// and role helpers rely on the ordering.
const (
	OpNone OpKind = iota
	OpRead
	OpWrite
	OpAtom
	OpAcqBlk
	OpRelBlk
	OpArBlk
	OpAcqGlb
	OpRelGlb
	OpArGlb
	OpBar
	OpBarRel // block barrier released (synthesized; mask = arrived warps)
	OpIf
	OpElse
	OpFi
	OpEnd // end-of-stream sentinel (kernel completed)
	// OpFlush merges producer-side suppressed-record counts back into the
	// detector's per-warp statistics: Seq carries the number of records the
	// simulator's producer filter elided for Warp since the last flush. The
	// producer emits a flush before any record that can change the warp's
	// clock or group format, so the count is attributed to the format that
	// was current when the suppressed records would have been handled.
	OpFlush
)

var kindNames = map[OpKind]string{
	OpRead: "rd", OpWrite: "wr", OpAtom: "atm",
	OpAcqBlk: "acqBlk", OpRelBlk: "relBlk", OpArBlk: "arBlk",
	OpAcqGlb: "acqGlb", OpRelGlb: "relGlb", OpArGlb: "arGlb",
	OpBar: "bar", OpBarRel: "barRel", OpIf: "if", OpElse: "else",
	OpFi: "fi", OpEnd: "end", OpFlush: "flush",
}

func (k OpKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return "?"
}

// IsAcquire reports whether the op has acquire semantics.
func (k OpKind) IsAcquire() bool {
	return k == OpAcqBlk || k == OpArBlk || k == OpAcqGlb || k == OpArGlb
}

// IsRelease reports whether the op has release semantics.
func (k OpKind) IsRelease() bool {
	return k == OpRelBlk || k == OpArBlk || k == OpRelGlb || k == OpArGlb
}

// IsSync reports whether the op is an acquire/release synchronization op.
func (k OpKind) IsSync() bool { return k.IsAcquire() || k.IsRelease() }

// GlobalScope reports whether a synchronization op uses a global fence.
func (k OpKind) GlobalScope() bool {
	return k == OpAcqGlb || k == OpRelGlb || k == OpArGlb
}

// IsMemory reports whether the op is a thread-level memory operation
// (read, write, atomic, or synchronization access).
func (k OpKind) IsMemory() bool {
	return k == OpRead || k == OpWrite || k == OpAtom || k.IsSync()
}

// Writes reports whether the op writes its location. Acquire-only ops read;
// release and acquire-release ops write; atomics write.
func (k OpKind) Writes() bool {
	switch k {
	case OpWrite, OpAtom, OpRelBlk, OpRelGlb, OpArBlk, OpArGlb:
		return true
	}
	return false
}

// LogKind maps the trace op kind to the instrumentation pseudo-op kind.
func (k OpKind) LogKind() ptx.LogKind {
	switch k {
	case OpRead:
		return ptx.LogRead
	case OpWrite:
		return ptx.LogWrite
	case OpAtom:
		return ptx.LogAtom
	case OpAcqBlk:
		return ptx.LogAcqBlk
	case OpRelBlk:
		return ptx.LogRelBlk
	case OpArBlk:
		return ptx.LogArBlk
	case OpAcqGlb:
		return ptx.LogAcqGlb
	case OpRelGlb:
		return ptx.LogRelGlb
	case OpArGlb:
		return ptx.LogArGlb
	case OpBar:
		return ptx.LogBar
	case OpIf:
		return ptx.LogIf
	case OpElse:
		return ptx.LogElse
	case OpFi:
		return ptx.LogFi
	}
	return ptx.LogNone
}

// FromLogKind maps an instrumentation pseudo-op kind back to the trace op.
func FromLogKind(k ptx.LogKind) OpKind {
	switch k {
	case ptx.LogRead:
		return OpRead
	case ptx.LogWrite:
		return OpWrite
	case ptx.LogAtom:
		return OpAtom
	case ptx.LogAcqBlk:
		return OpAcqBlk
	case ptx.LogRelBlk:
		return OpRelBlk
	case ptx.LogArBlk:
		return OpArBlk
	case ptx.LogAcqGlb:
		return OpAcqGlb
	case ptx.LogRelGlb:
		return OpRelGlb
	case ptx.LogArGlb:
		return OpArGlb
	case ptx.LogBar:
		return OpBar
	case ptx.LogIf:
		return OpIf
	case ptx.LogElse:
		return OpElse
	case ptx.LogFi:
		return OpFi
	}
	return OpNone
}

// fenceScopeGlobal reports whether in is a fence and whether it is
// global-scoped. System-level fences are treated as global fences (we focus
// on intra-kernel races, footnote 1 of the paper).
func fenceScope(in *ptx.Instr) (isFence, global bool) {
	if in.Op != ptx.OpMembar {
		return false, false
	}
	return true, in.Level == "gl" || in.Level == "sys"
}

// Classify maps each memory/barrier instruction index of the CFG's flat
// instruction stream to the trace operation it should log. Fence
// instructions themselves map to nothing: their effect is folded into the
// adjacent access. Adjacency is static within a basic block.
func Classify(c *kernel.CFG) map[int]OpKind {
	out := make(map[int]OpKind)
	ins := c.Instrs
	// prevInBlock / nextInBlock respect basic-block boundaries: a fence in
	// a different block is not "immediately" adjacent in static code.
	sameBlock := func(i, j int) bool {
		return j >= 0 && j < len(ins) && c.BlockOf[i] == c.BlockOf[j]
	}
	for i, in := range ins {
		switch in.Op {
		case ptx.OpBar:
			out[i] = OpBar
		case ptx.OpLd:
			if !in.MemoryAccess() {
				continue
			}
			if sameBlock(i, i+1) {
				if f, g := fenceScope(ins[i+1]); f {
					if g {
						out[i] = OpAcqGlb
					} else {
						out[i] = OpAcqBlk
					}
					continue
				}
			}
			out[i] = OpRead
		case ptx.OpSt:
			if !in.MemoryAccess() {
				continue
			}
			if sameBlock(i, i-1) {
				if f, g := fenceScope(ins[i-1]); f {
					if g {
						out[i] = OpRelGlb
					} else {
						out[i] = OpRelBlk
					}
					continue
				}
			}
			out[i] = OpWrite
		case ptx.OpAtom, ptx.OpRed:
			if !in.MemoryAccess() {
				continue
			}
			fBefore, gBefore := false, false
			fAfter, gAfter := false, false
			if sameBlock(i, i-1) {
				fBefore, gBefore = fenceScope(ins[i-1])
			}
			if sameBlock(i, i+1) {
				fAfter, gAfter = fenceScope(ins[i+1])
			}
			switch {
			case fBefore && fAfter:
				if gBefore || gAfter {
					out[i] = OpArGlb
				} else {
					out[i] = OpArBlk
				}
			case in.Atom == ptx.AtomCas && fAfter:
				if gAfter {
					out[i] = OpAcqGlb
				} else {
					out[i] = OpAcqBlk
				}
			case in.Atom == ptx.AtomExch && fBefore:
				if gBefore {
					out[i] = OpRelGlb
				} else {
					out[i] = OpRelBlk
				}
			default:
				out[i] = OpAtom
			}
		}
	}
	return out
}
