// Package barracuda is a dynamic data race detector for CUDA kernels,
// reproducing "BARRACUDA: Binary-level Analysis of Runtime RAces in CUDA
// programs" (PLDI 2017) as a pure-Go system.
//
// The library executes PTX kernels on a built-in SIMT simulator,
// instruments them at the binary (PTX) level, streams warp-level events
// through lock-free GPU→host queues, and runs the BARRACUDA
// happens-before algorithm with lossless compressed per-thread vector
// clocks. It detects intra-warp (divergence), intra-block and inter-block
// races on shared and global memory, handles atomics, scoped memory
// fences and barriers, flags barrier divergence, and filters well-defined
// same-value intra-warp writes.
//
// Quick start:
//
//	s, err := barracuda.Open(ptxSource, barracuda.Config{})
//	out, _ := s.Alloc(4 * n)
//	res, err := s.Detect("kernel", barracuda.D1(blocks), barracuda.D1(threads), out)
//	for _, race := range res.Report.Races {
//	    fmt.Println(race)
//	}
package barracuda

import (
	"barracuda/internal/core"
	"barracuda/internal/detector"
	"barracuda/internal/gpusim"
	"barracuda/internal/memmodel"
	"barracuda/internal/profile"
	"barracuda/internal/ptvc"
	"barracuda/internal/ptx"
)

// Config tunes the detection pipeline; the zero value is a deterministic
// single-queue configuration with byte-granularity shadow memory.
type Config = detector.Config

// Report is the set of races and barrier divergences found in one run.
type Report = core.Report

// Race is one detected data race.
type Race = core.Race

// RaceKind classifies a race by the threads involved.
type RaceKind = core.RaceKind

// Race classifications.
const (
	IntraWarp  = core.IntraWarp
	IntraBlock = core.IntraBlock
	InterBlock = core.InterBlock
)

// BarrierDivergence is a bar.sync executed with inactive threads.
type BarrierDivergence = core.BarrierDivergence

// Result bundles the report with simulation statistics and the PTVC
// format distribution.
type Result = detector.Result

// Dim is a 1-, 2- or 3-D launch extent.
type Dim = gpusim.Dim3

// D1 builds a one-dimensional extent.
func D1(n int) Dim { return gpusim.D1(n) }

// ErrStepBudget is returned when a kernel exceeds its instruction budget
// (e.g. a spin loop that would hang on real hardware).
var ErrStepBudget = gpusim.ErrStepBudget

// Format is a compressed per-thread vector-clock storage format.
type Format = ptvc.Format

// The four PTVC formats of the paper's Figure 7.
const (
	Converged      = ptvc.Converged
	Diverged       = ptvc.Diverged
	NestedDiverged = ptvc.NestedDiverged
	SparseVC       = ptvc.SparseVC
)

// Session owns one simulated device with a module loaded both natively
// and instrumented.
type Session struct {
	s *detector.Session
}

// Open parses PTX source, instruments it, and prepares a session.
func Open(ptxSource string, cfg Config) (*Session, error) {
	s, err := detector.OpenPTX(ptxSource, cfg)
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// OpenFatBinary opens a session from a fat binary, extracting the
// architecture-neutral PTX (the paper's __cudaRegisterFatBinary
// interception).
func OpenFatBinary(bin []byte, cfg Config) (*Session, error) {
	s, err := detector.OpenFatBinary(bin, cfg)
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// Kernels lists the kernels available in the loaded module.
func (s *Session) Kernels() []string { return s.s.Native.KernelNames() }

// Alloc reserves device global memory and returns its address.
func (s *Session) Alloc(bytes int) (uint64, error) { return s.s.Dev.Alloc(bytes) }

// MustAlloc is Alloc that panics on failure (examples and tests).
func (s *Session) MustAlloc(bytes int) uint64 { return s.s.Dev.MustAlloc(bytes) }

// WriteU32 stores a value into device memory.
func (s *Session) WriteU32(addr uint64, v uint32) error { return s.s.Dev.WriteU32(addr, v) }

// ReadU32 loads a value from device memory.
func (s *Session) ReadU32(addr uint64) (uint32, error) { return s.s.Dev.ReadU32(addr) }

// WriteBytes copies host bytes into device memory.
func (s *Session) WriteBytes(addr uint64, b []byte) error { return s.s.Dev.WriteBytes(addr, b) }

// ReadBytes copies device memory to the host.
func (s *Session) ReadBytes(addr uint64, n int) ([]byte, error) { return s.s.Dev.ReadBytes(addr, n) }

// Launch describes one kernel launch for DetectLaunch.
type Launch struct {
	Grid  Dim
	Block Dim
	Args  []uint64
	// MaxInstrs aborts runaway kernels with ErrStepBudget (0 = off).
	MaxInstrs uint64
	// RandomSched randomizes warp scheduling with the given seed.
	RandomSched bool
	Seed        int64
	// WarpSize overrides the simulated warp width (default 32, range
	// 2..32): running detection at a smaller warp size exposes latent
	// bugs in code that assumes 32-thread lockstep (§3.1 future work).
	WarpSize int
}

// Detect runs a kernel under the race detector.
func (s *Session) Detect(kernel string, grid, block Dim, args ...uint64) (*Result, error) {
	return s.DetectLaunch(kernel, Launch{Grid: grid, Block: block, Args: args})
}

// DetectLaunch runs a kernel under the race detector with full launch
// control.
func (s *Session) DetectLaunch(kernel string, l Launch) (*Result, error) {
	return s.s.Detect(kernel, gpusim.LaunchConfig{
		Grid:          l.Grid,
		Block:         l.Block,
		Args:          l.Args,
		MaxWarpInstrs: l.MaxInstrs,
		RandomSched:   l.RandomSched,
		Seed:          l.Seed,
		WarpSize:      l.WarpSize,
	})
}

// RunNative executes the uninstrumented kernel (baseline timing and
// functional runs).
func (s *Session) RunNative(kernel string, grid, block Dim, args ...uint64) error {
	_, _, err := s.s.RunNative(kernel, gpusim.LaunchConfig{Grid: grid, Block: block, Args: args})
	return err
}

// InstrumentationStats reports per-kernel static instrumentation counts
// (the Figure 9 quantities).
type InstrumentationStats struct {
	Static       int
	Instrumented int
	Unoptimized  int
}

// Instrumentation returns the instrumentation statistics of a kernel.
func (s *Session) Instrumentation(kernel string) (InstrumentationStats, bool) {
	st, ok := s.s.Stats[kernel]
	if !ok {
		return InstrumentationStats{}, false
	}
	return InstrumentationStats{
		Static:       st.Static,
		Instrumented: st.Instrumented,
		Unoptimized:  st.InstrumentedNo,
	}, true
}

// InstrumentedPTX returns the instrumented module's PTX text.
func (s *Session) InstrumentedPTX() string { return ptx.Print(s.s.InstMod) }

// Profile runs a kernel under the memory-access profiler — a second
// dynamic analysis built on the same instrumentation framework — and
// returns the profile report.
func (s *Session) Profile(kernel string, l Launch) (*profile.Report, error) {
	p := profile.New()
	_, err := s.s.Instr.Launch(kernel, gpusim.LaunchConfig{
		Grid:             l.Grid,
		Block:            l.Block,
		Args:             l.Args,
		MaxWarpInstrs:    l.MaxInstrs,
		RandomSched:      l.RandomSched,
		Seed:             l.Seed,
		WarpSize:         l.WarpSize,
		Sink:             p,
		EmitBranchEvents: true,
	})
	if err != nil {
		return nil, err
	}
	return p.Report(), nil
}

// ProfileReport is a memory-access profile (per-site counts, coalescing
// quality, divergence statistics, footprint).
type ProfileReport = profile.Report

// LitmusMP runs the Figure 4 message-passing litmus test: the number of
// non-SC observations in runs executions on a weak (Kepler-like) or
// strong (Maxwell-like) architecture profile.
func LitmusMP(fence1Global, fence2Global, weakArch bool, runs int, seed int64) int {
	f := func(global bool) memmodel.FenceKind {
		if global {
			return memmodel.Gl
		}
		return memmodel.Cta
	}
	arch := memmodel.Maxwell
	if weakArch {
		arch = memmodel.Kepler
	}
	return memmodel.MP(f(fence1Global), f(fence2Global)).Estimate(arch, runs, seed)
}
