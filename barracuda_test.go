package barracuda

import (
	"strings"
	"testing"
)

const racyPTX = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	st.global.u32 [%rd1], %r1;
	ret;
}`

const cleanPTX = `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<8>;
	.reg .u64 %rd<8>;
	ld.param.u64 %rd1, [out];
	mov.u32 %r1, %tid.x;
	mov.u32 %r2, %ctaid.x;
	mov.u32 %r3, %ntid.x;
	mad.lo.u32 %r4, %r2, %r3, %r1;
	shl.b32 %r5, %r4, 2;
	cvt.u64.u32 %rd2, %r5;
	add.u64 %rd3, %rd1, %rd2;
	st.global.u32 [%rd3], %r4;
	ret;
}`

func TestPublicAPIDetectRace(t *testing.T) {
	s, err := Open(racyPTX, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := s.MustAlloc(4)
	res, err := s.Detect("k", D1(1), D1(32), out)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.HasRaces() {
		t.Fatal("race missed through the public API")
	}
	if res.Report.Races[0].Kind != IntraWarp {
		t.Errorf("kind = %v", res.Report.Races[0].Kind)
	}
}

func TestPublicAPICleanKernel(t *testing.T) {
	s, err := Open(cleanPTX, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := s.MustAlloc(4 * 64)
	res, err := s.Detect("k", D1(2), D1(32), out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.HasRaces() {
		t.Fatalf("false positives: %v", res.Report.Races)
	}
	// Native run works and leaves the expected values.
	if err := s.RunNative("k", D1(2), D1(32), out); err != nil {
		t.Fatal(err)
	}
	v, err := s.ReadU32(out + 4*5)
	if err != nil || v != 5 {
		t.Errorf("out[5] = %d, %v", v, err)
	}
}

func TestPublicAPIMemoryHelpers(t *testing.T) {
	s, err := Open(cleanPTX, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteU32(a, 77); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBytes(a+4, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	b, err := s.ReadBytes(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 77 || b[4] != 1 || b[7] != 4 {
		t.Errorf("bytes = %v", b)
	}
}

func TestPublicAPIKernelsAndStats(t *testing.T) {
	s, err := Open(cleanPTX, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ks := s.Kernels()
	if len(ks) != 1 || ks[0] != "k" {
		t.Errorf("Kernels = %v", ks)
	}
	st, ok := s.Instrumentation("k")
	if !ok || st.Static == 0 || st.Instrumented == 0 {
		t.Errorf("instrumentation stats = %+v ok=%v", st, ok)
	}
	if !strings.Contains(s.InstrumentedPTX(), "_log.") {
		t.Error("instrumented PTX has no logging calls")
	}
}

func TestPublicAPILitmus(t *testing.T) {
	// cta/cta on the weak profile admits non-SC behaviour...
	if n := LitmusMP(false, false, true, 20000, 1); n == 0 {
		t.Error("cta/cta weak: no violations")
	}
	// ...a global fence on either side forbids it.
	if n := LitmusMP(true, false, true, 5000, 2); n != 0 {
		t.Errorf("gl/cta weak: %d violations", n)
	}
	if n := LitmusMP(false, false, false, 5000, 3); n != 0 {
		t.Errorf("cta/cta strong: %d violations", n)
	}
}

func TestPublicAPIProfile(t *testing.T) {
	s, err := Open(cleanPTX, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := s.MustAlloc(4 * 64)
	rep, err := s.Profile("k", Launch{Grid: D1(2), Block: D1(32), Args: []uint64{out}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sites) == 0 {
		t.Fatal("profile found no access sites")
	}
	if rep.Sites[0].CoalescingRatio() != 1 {
		t.Errorf("per-thread store should be fully coalesced: %+v", rep.Sites[0])
	}
	if rep.FootprintBytes == 0 {
		t.Error("no footprint")
	}
}

func TestPublicAPIWarpSize(t *testing.T) {
	s, err := Open(racyPTX, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := s.MustAlloc(4)
	res, err := s.DetectLaunch("k", Launch{Grid: D1(1), Block: D1(32), Args: []uint64{out}, WarpSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	// With 8-lane warps the same-word writes race across warps too.
	kinds := map[RaceKind]bool{}
	for _, r := range res.Report.Races {
		kinds[r.Kind] = true
	}
	if !kinds[IntraBlock] {
		t.Errorf("expected inter-warp races at warp size 8: %v", res.Report.Races)
	}
}

func TestPublicAPIBudget(t *testing.T) {
	spin := `.visible .entry k(.param .u64 out)
{
	.reg .u32 %r<4>;
	.reg .u64 %rd<4>;
	.reg .pred %p<2>;
	ld.param.u64 %rd1, [out];
SPIN:
	ld.global.u32 %r1, [%rd1];
	setp.eq.u32 %p1, %r1, 0;
	@%p1 bra SPIN;
	ret;
}`
	s, err := Open(spin, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := s.MustAlloc(4)
	_, err = s.DetectLaunch("k", Launch{Grid: D1(1), Block: D1(1), Args: []uint64{out}, MaxInstrs: 10000})
	if err == nil {
		t.Fatal("infinite spin did not hit the budget")
	}
}
